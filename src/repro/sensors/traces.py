"""Synthetic accelerometer traces for the motion pre-filter (§V).

The paper samples 3-axis accelerometers on phone and watch (50-150
samples per window), converts to magnitude, normalizes, and compares
with DTW.  We synthesize physically shaped traces:

* **sitting** — gravity plus small tremor;
* **walking** — ~1.8 Hz gait fundamental with harmonics;
* **jogging** — ~2.8 Hz, larger amplitude, more impact noise;
* co-located device pairs share the same underlying body motion with
  per-device noise, mounting gain, and a small lag (pocket vs wrist);
* "different" pairs draw independent motions — the DTW score the
  filter must reject (paper Table II: 0.20 vs ≈0.02-0.06 co-located).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

import numpy as np

from ..errors import WearLockError

#: Standard gravity, the baseline of any accelerometer magnitude trace.
GRAVITY = 9.81


class ActivityKind(str, Enum):
    """Activities evaluated in the paper's Table II."""

    SITTING = "sitting"
    WALKING = "walking"
    JOGGING = "jogging"


#: (fundamental Hz, amplitude m/s^2, tremor m/s^2, gesture m/s^2)
#: per activity.  ``gesture`` is the phone-handling transient: the user
#: just pressed the power button, so both devices ride the same
#: reach-and-hold motion — strongest while sitting (nothing else is
#: moving), still present while walking or jogging.
_ACTIVITY_PARAMS = {
    ActivityKind.SITTING: (0.0, 0.0, 0.10, 1.6),
    ActivityKind.WALKING: (1.8, 2.2, 0.30, 1.1),
    ActivityKind.JOGGING: (2.8, 5.5, 0.80, 1.1),
}


def _rng(seed_or_rng) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def _body_motion(
    kind: ActivityKind,
    n_samples: int,
    sample_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Latent 1-D body motion signal shared by devices on one body."""
    freq, amp, tremor, gesture_amp = _ACTIVITY_PARAMS[kind]
    t = np.arange(n_samples) / sample_rate
    signal = np.zeros(n_samples)
    if freq > 0:
        phase = rng.uniform(0, 2 * np.pi)
        # Fundamental + first two harmonics with decaying weight, plus
        # mild cycle-to-cycle frequency wander.
        wander = 1.0 + 0.03 * np.cumsum(rng.standard_normal(n_samples)) / np.sqrt(
            np.arange(1, n_samples + 1)
        )
        for h, w in ((1, 1.0), (2, 0.45), (3, 0.18)):
            signal += amp * w * np.sin(
                2 * np.pi * freq * h * t * wander + phase * h
            )
    # The phone-handling gesture: a smooth reach-and-settle transient
    # centered somewhere in the window, with a couple of slow wiggles.
    if gesture_amp > 0:
        center = rng.uniform(0.25, 0.75) * t[-1] if t[-1] > 0 else 0.0
        width = max(0.25, 0.3 * (t[-1] if t[-1] > 0 else 1.0))
        envelope = np.exp(-0.5 * ((t - center) / width) ** 2)
        wiggle_hz = rng.uniform(0.8, 1.6)
        wiggle_phase = rng.uniform(0, 2 * np.pi)
        signal += gesture_amp * envelope * np.sin(
            2 * np.pi * wiggle_hz * t + wiggle_phase
        )
    signal += tremor * rng.standard_normal(n_samples)
    return signal


def accelerometer_trace(
    kind: ActivityKind,
    n_samples: int = 100,
    sample_rate: float = 50.0,
    rng=None,
) -> np.ndarray:
    """One device's 3-axis accelerometer trace, shape ``(n, 3)``."""
    if n_samples < 2:
        raise WearLockError("n_samples must be >= 2")
    generator = _rng(rng)
    motion = _body_motion(kind, n_samples, sample_rate, generator)
    # Distribute the scalar motion across axes with a random (fixed)
    # orientation, add gravity along a random axis direction.
    direction = generator.standard_normal(3)
    direction /= np.linalg.norm(direction)
    gravity_dir = generator.standard_normal(3)
    gravity_dir /= np.linalg.norm(gravity_dir)
    trace = (
        motion[:, None] * direction[None, :]
        + GRAVITY * gravity_dir[None, :]
        + 0.05 * generator.standard_normal((n_samples, 3))
    )
    return trace


def magnitude(trace: np.ndarray) -> np.ndarray:
    """3-axis trace → magnitude: ``sqrt(sx^2 + sy^2 + sz^2)``.

    The paper uses magnitudes because the relative orientation between
    watch and phone is unknowable.
    """
    x = np.asarray(trace, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != 3:
        raise WearLockError("trace must have shape (n, 3)")
    return np.sqrt(np.sum(x * x, axis=1))


def normalize_trace(series: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance normalization (constant input → zeros)."""
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise WearLockError("series must be a non-empty 1-D array")
    centered = x - np.mean(x)
    std = float(np.std(centered))
    if std < 1e-12:
        return np.zeros_like(centered)
    return centered / std


def co_located_pair(
    kind: ActivityKind,
    n_samples: int = 100,
    sample_rate: float = 50.0,
    lag_samples: int = 3,
    device_noise: float = 0.12,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Phone and watch traces while carried by the *same* person.

    Both devices observe the same latent body motion; the watch sees it
    slightly lagged (wrist articulation) and each adds its own sensor
    noise and mounting gain.
    Returns ``(phone_xyz, watch_xyz)``, each of shape ``(n, 3)``.
    """
    generator = _rng(rng)
    total = n_samples + abs(lag_samples)
    motion = _body_motion(kind, total, sample_rate, generator)

    def render(latent: np.ndarray, gain: float) -> np.ndarray:
        # The magnitude of (gravity + motion) only preserves the motion
        # when the motion has a component along gravity; for held/worn
        # devices the handling gesture is dominated by vertical motion,
        # so constrain the alignment rather than drawing it uniformly.
        gravity_dir = generator.standard_normal(3)
        gravity_dir /= np.linalg.norm(gravity_dir)
        perp = generator.standard_normal(3)
        perp -= perp.dot(gravity_dir) * gravity_dir
        perp /= np.linalg.norm(perp)
        alignment = generator.uniform(0.65, 0.95)
        direction = (
            alignment * gravity_dir
            + np.sqrt(1.0 - alignment**2) * perp
        )
        return (
            gain * latent[:, None] * direction[None, :]
            + GRAVITY * gravity_dir[None, :]
            + device_noise * generator.standard_normal((latent.size, 3))
        )

    phone = render(motion[:n_samples], gain=1.0)
    start = abs(lag_samples)
    watch = render(motion[start: start + n_samples], gain=0.85)
    return phone, watch


def different_devices_pair(
    kind_a: ActivityKind,
    kind_b: Optional[ActivityKind] = None,
    n_samples: int = 100,
    sample_rate: float = 50.0,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Traces from two *different* people (independent motions).

    ``kind_b`` defaults to ``kind_a`` — even the same activity performed
    by another body is uncorrelated in detail, which is what the DTW
    filter exploits.
    """
    generator = _rng(rng)
    a = accelerometer_trace(kind_a, n_samples, sample_rate, rng=generator)
    b = accelerometer_trace(
        kind_b if kind_b is not None else kind_a,
        n_samples,
        sample_rate,
        rng=generator,
    )
    return a, b
