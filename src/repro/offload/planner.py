"""Offload planning: where should the watch's DSP run?

The paper's insight (§V): the acoustic DSP after each recording —
sliding-window cross-correlation plus OFDM demodulation — is heavy for
wearable silicon, and since the DSP library is shared by both apps the
computation can be partitioned freely.  The planner compares

* **local**: run on the watch;
* **offload**: ship the recorded audio over the wireless link and run
  on the phone,

in terms of wall-clock delay and *watch* energy (the phone's battery is
an order of magnitude larger, so the paper optimizes the wearable).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..devices.compute import Workload
from ..devices.profiles import DeviceProfile
from ..errors import ConfigurationError
from ..wireless.radio import WirelessLink


class Placement(str, Enum):
    """Where a processing step executes."""

    WATCH_LOCAL = "watch_local"
    PHONE_OFFLOAD = "phone_offload"


@dataclass(frozen=True)
class ProcessingPlan:
    """A placement decision with its predicted costs."""

    placement: Placement
    predicted_delay_s: float
    predicted_watch_energy_j: float
    transfer_bytes: int

    @property
    def offloaded(self) -> bool:
        return self.placement is Placement.PHONE_OFFLOAD


class OffloadPlanner:
    """Chooses local vs offloaded execution for a recording's DSP.

    Parameters
    ----------
    watch, phone:
        Device profiles at each end.
    link:
        Wireless link used to ship the audio (its *median* costs feed
        the prediction; the executor then simulates actual jitter).
    prefer:
        ``None`` lets the cost model decide; a :class:`Placement` forces
        the decision (used by the paper's Config 3 local baseline).
    """

    def __init__(
        self,
        watch: DeviceProfile,
        phone: DeviceProfile,
        link: WirelessLink,
        prefer: Optional[Placement] = None,
    ):
        if not watch.is_wearable:
            raise ConfigurationError("watch profile must be a wearable")
        self._watch = watch
        self._phone = phone
        self._link = link
        self._prefer = prefer

    def _predict_transfer_seconds(self, n_bytes: int) -> float:
        # Median prediction: latency + payload/throughput (no jitter).
        return (
            self._link.message_latency
            + 8.0 * n_bytes / self._link.throughput_bps
        )

    def plan(self, work: Workload, audio_bytes: int) -> ProcessingPlan:
        """Decide placement for ``work`` given the clip size to ship."""
        if audio_bytes < 0:
            raise ConfigurationError("audio_bytes must be >= 0")

        local_delay = self._watch.compute_seconds(work.mops)
        local_energy = self._watch.compute_energy_j(work.mops)

        transfer_s = self._predict_transfer_seconds(audio_bytes)
        offload_delay = transfer_s + self._phone.compute_seconds(work.mops)
        offload_energy = (
            self._watch.radio_energy_j(transfer_s)
            + self._watch.idle_power_w
            * self._phone.compute_seconds(work.mops)
        )

        if self._prefer is Placement.WATCH_LOCAL:
            choice = Placement.WATCH_LOCAL
        elif self._prefer is Placement.PHONE_OFFLOAD:
            choice = Placement.PHONE_OFFLOAD
        else:
            # Lexicographic: first don't be slower, then save energy.
            if offload_delay <= local_delay:
                choice = Placement.PHONE_OFFLOAD
            elif offload_energy < local_energy and offload_delay < 1.5 * local_delay:
                choice = Placement.PHONE_OFFLOAD
            else:
                choice = Placement.WATCH_LOCAL

        if choice is Placement.PHONE_OFFLOAD:
            return ProcessingPlan(
                placement=choice,
                predicted_delay_s=offload_delay,
                predicted_watch_energy_j=offload_energy,
                transfer_bytes=audio_bytes,
            )
        return ProcessingPlan(
            placement=choice,
            predicted_delay_s=local_delay,
            predicted_watch_energy_j=local_energy,
            transfer_bytes=0,
        )
