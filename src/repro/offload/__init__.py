"""Computation offloading (paper §V): planner and executor."""

from .planner import OffloadPlanner, ProcessingPlan, Placement
from .executor import OffloadExecutor, ExecutionReport

__all__ = [
    "OffloadPlanner",
    "ProcessingPlan",
    "Placement",
    "OffloadExecutor",
    "ExecutionReport",
]
