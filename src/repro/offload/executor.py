"""Offload execution: run a plan against device and link models.

The executor performs the bookkeeping the planner only predicted:
actual (jittered) transfer times from the link model, compute time on
whichever device the plan chose, and energy charged to each side's
:class:`repro.devices.battery.EnergyMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.battery import EnergyMeter
from ..devices.compute import Workload
from ..devices.profiles import DeviceProfile
from ..protocol.stages import MSG_RESEND_LIMIT
from ..wireless.radio import WirelessLink
from .planner import Placement, ProcessingPlan


@dataclass(frozen=True)
class ExecutionReport:
    """Measured outcome of executing one processing plan."""

    placement: Placement
    delay_s: float
    transfer_s: float
    compute_s: float
    watch_energy_j: float
    phone_energy_j: float


class OffloadExecutor:
    """Executes processing plans and meters both devices.

    Delivery semantics: an offloaded clip transfer honours
    :attr:`repro.wireless.radio.TransferStats.delivered`.  A dropped
    transfer (fault injection) is resent up to
    :data:`repro.protocol.stages.MSG_RESEND_LIMIT` times — the same
    bounded-resend discipline the protocol stages use for control
    messages — with every timeout charged to the watch radio meter.
    When resends are exhausted the executor falls back to computing
    Phase 1 locally on the watch instead of pretending the phone saw
    the clip; the report then carries ``Placement.WATCH_LOCAL`` with
    the wasted transfer seconds still in ``transfer_s``.
    """

    def __init__(
        self,
        watch: DeviceProfile,
        phone: DeviceProfile,
        link: WirelessLink,
    ):
        self._watch = watch
        self._phone = phone
        self._link = link
        self.watch_meter = EnergyMeter(device=watch)
        self.phone_meter = EnergyMeter(device=phone)

    def execute(
        self, plan: ProcessingPlan, work: Workload, tracer=None
    ) -> ExecutionReport:
        """Run ``work`` where ``plan`` says; return measured costs.

        With a :class:`repro.core.trace.Tracer` the execution is
        recorded as an ``offload.execute`` span carrying the placement
        and the measured transfer/compute split.
        """
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "offload.execute", placement=plan.placement.name
            ) as span:
                report = self._execute(plan, work)
                span.counters["transfer_s"] = report.transfer_s
                span.counters["compute_s"] = report.compute_s
                span.counters["work_mops"] = work.mops
            return report
        return self._execute(plan, work)

    def _execute(self, plan: ProcessingPlan, work: Workload) -> ExecutionReport:
        if plan.placement is Placement.WATCH_LOCAL:
            compute_s = self.watch_meter.record_compute(work.mops)
            return ExecutionReport(
                placement=plan.placement,
                delay_s=compute_s,
                transfer_s=0.0,
                compute_s=compute_s,
                watch_energy_j=self._watch.compute_energy_j(work.mops),
                phone_energy_j=0.0,
            )

        transfer_s = 0.0
        delivered = False
        for _attempt in range(MSG_RESEND_LIMIT + 1):
            stats = self._link.send_file(plan.transfer_bytes)
            transfer_s += stats.seconds
            self.watch_meter.record_radio(stats.seconds)
            if stats.delivered:
                delivered = True
                break

        if not delivered:
            # Resends exhausted: the clip never reached the phone, so
            # Phase 1 runs on the watch after all.  The timeouts above
            # stay on the watch radio meter and in ``transfer_s``.
            compute_s = self.watch_meter.record_compute(work.mops)
            return ExecutionReport(
                placement=Placement.WATCH_LOCAL,
                delay_s=transfer_s + compute_s,
                transfer_s=transfer_s,
                compute_s=compute_s,
                watch_energy_j=self._watch.radio_energy_j(transfer_s)
                + self._watch.compute_energy_j(work.mops),
                phone_energy_j=0.0,
            )

        compute_s = self.phone_meter.record_compute(work.mops)
        self.watch_meter.record_idle(compute_s)
        watch_energy = (
            self._watch.radio_energy_j(transfer_s)
            + self._watch.idle_power_w * compute_s
        )
        return ExecutionReport(
            placement=plan.placement,
            delay_s=transfer_s + compute_s,
            transfer_s=transfer_s,
            compute_s=compute_s,
            watch_energy_j=watch_energy,
            phone_energy_j=self._phone.compute_energy_j(work.mops),
        )
