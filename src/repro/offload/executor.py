"""Offload execution: run a plan against device and link models.

The executor performs the bookkeeping the planner only predicted:
actual (jittered) transfer times from the link model, compute time on
whichever device the plan chose, and energy charged to each side's
:class:`repro.devices.battery.EnergyMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.battery import EnergyMeter
from ..devices.compute import Workload
from ..devices.profiles import DeviceProfile
from ..wireless.radio import WirelessLink
from .planner import Placement, ProcessingPlan


@dataclass(frozen=True)
class ExecutionReport:
    """Measured outcome of executing one processing plan."""

    placement: Placement
    delay_s: float
    transfer_s: float
    compute_s: float
    watch_energy_j: float
    phone_energy_j: float


class OffloadExecutor:
    """Executes processing plans and meters both devices."""

    def __init__(
        self,
        watch: DeviceProfile,
        phone: DeviceProfile,
        link: WirelessLink,
    ):
        self._watch = watch
        self._phone = phone
        self._link = link
        self.watch_meter = EnergyMeter(device=watch)
        self.phone_meter = EnergyMeter(device=phone)

    def execute(
        self, plan: ProcessingPlan, work: Workload, tracer=None
    ) -> ExecutionReport:
        """Run ``work`` where ``plan`` says; return measured costs.

        With a :class:`repro.core.trace.Tracer` the execution is
        recorded as an ``offload.execute`` span carrying the placement
        and the measured transfer/compute split.
        """
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "offload.execute", placement=plan.placement.name
            ) as span:
                report = self._execute(plan, work)
                span.counters["transfer_s"] = report.transfer_s
                span.counters["compute_s"] = report.compute_s
                span.counters["work_mops"] = work.mops
            return report
        return self._execute(plan, work)

    def _execute(self, plan: ProcessingPlan, work: Workload) -> ExecutionReport:
        if plan.placement is Placement.WATCH_LOCAL:
            compute_s = self.watch_meter.record_compute(work.mops)
            return ExecutionReport(
                placement=plan.placement,
                delay_s=compute_s,
                transfer_s=0.0,
                compute_s=compute_s,
                watch_energy_j=self._watch.compute_energy_j(work.mops),
                phone_energy_j=0.0,
            )

        stats = self._link.send_file(plan.transfer_bytes)
        self.watch_meter.record_radio(stats.seconds)
        compute_s = self.phone_meter.record_compute(work.mops)
        self.watch_meter.record_idle(compute_s)
        watch_energy = (
            self._watch.radio_energy_j(stats.seconds)
            + self._watch.idle_power_w * compute_s
        )
        return ExecutionReport(
            placement=plan.placement,
            delay_s=stats.seconds + compute_s,
            transfer_s=stats.seconds,
            compute_s=compute_s,
            watch_energy_j=watch_energy,
            phone_energy_j=self._phone.compute_energy_j(work.mops),
        )
