"""Setup shim.

Kept alongside pyproject.toml so `pip install -e .` works in offline
environments whose setuptools lacks wheel support (legacy editable
installs go through `setup.py develop`, which needs no wheel).
"""

from setuptools import setup

setup()
