"""Tests for channel coding: repetition, Hamming, convolutional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModemError
from repro.modem.bits import bit_error_rate, random_bits
from repro.modem.coding import (
    BlockInterleaver,
    ConvolutionalCode,
    HammingCode,
    RepetitionCode,
    get_code,
)

ALL_CODES = [RepetitionCode(3), RepetitionCode(5), HammingCode(),
             ConvolutionalCode()]


class TestRoundtrips:
    @pytest.mark.parametrize(
        "code", ALL_CODES, ids=lambda c: type(c).__name__
    )
    def test_clean_roundtrip(self, code):
        bits = random_bits(120, rng=0)
        assert np.array_equal(code.decode(code.encode(bits), 120), bits)

    @pytest.mark.parametrize(
        "code", ALL_CODES, ids=lambda c: type(c).__name__
    )
    def test_rate_in_unit_interval(self, code):
        assert 0 < code.rate <= 1.0

    @pytest.mark.parametrize(
        "code", ALL_CODES, ids=lambda c: type(c).__name__
    )
    def test_rejects_non_binary(self, code):
        with pytest.raises(ModemError):
            code.encode(np.array([0, 1, 2]))


class TestRepetition:
    def test_corrects_minority_errors(self):
        code = RepetitionCode(5)
        bits = random_bits(40, rng=1)
        coded = code.encode(bits)
        rng = np.random.default_rng(2)
        corrupted = coded.copy()
        # Flip at most 2 of every 5 repeats.
        for i in range(bits.size):
            positions = rng.choice(5, size=2, replace=False)
            corrupted[i * 5 + positions] ^= 1
        assert np.array_equal(code.decode(corrupted, 40), bits)

    def test_rejects_even_factor(self):
        with pytest.raises(ModemError):
            RepetitionCode(4)


class TestHamming:
    def test_corrects_one_error_per_block(self):
        code = HammingCode()
        bits = random_bits(64, rng=3)
        coded = code.encode(bits)
        corrupted = coded.copy()
        # Flip exactly one bit in every 7-bit codeword.
        rng = np.random.default_rng(4)
        for block in range(coded.size // 7):
            corrupted[block * 7 + rng.integers(0, 7)] ^= 1
        assert np.array_equal(code.decode(corrupted, 64), bits)

    def test_two_errors_per_block_not_corrected(self):
        code = HammingCode()
        bits = np.zeros(4, dtype=np.uint8)
        coded = code.encode(bits)
        corrupted = coded.copy()
        corrupted[0] ^= 1
        corrupted[1] ^= 1
        assert not np.array_equal(code.decode(corrupted, 4), bits)

    def test_codeword_length(self):
        code = HammingCode()
        assert code.encode(np.zeros(8, dtype=np.uint8)).size == 14

    def test_pads_partial_block(self):
        code = HammingCode()
        bits = random_bits(6, rng=5)  # not a multiple of 4
        assert np.array_equal(code.decode(code.encode(bits), 6), bits)


class TestConvolutional:
    def test_corrects_scattered_errors(self):
        code = ConvolutionalCode()
        bits = random_bits(100, rng=6)
        coded = code.encode(bits)
        rng = np.random.default_rng(7)
        corrupted = coded.copy()
        idx = rng.choice(coded.size, size=coded.size // 20, replace=False)
        corrupted[idx] ^= 1  # 5% channel BER
        decoded = code.decode(corrupted, 100)
        assert bit_error_rate(bits, decoded) < 0.02

    def test_outperforms_uncoded_at_same_channel_ber(self):
        code = ConvolutionalCode()
        bits = random_bits(200, rng=8)
        coded = code.encode(bits)
        p = 0.06
        post_fec = []
        for trial in range(6):
            rng = np.random.default_rng(100 + trial)
            noise = (rng.uniform(size=coded.size) < p).astype(np.uint8)
            decoded = code.decode(coded ^ noise, 200)
            post_fec.append(bit_error_rate(bits, decoded))
        # On average the Viterbi decoder crushes a 6% channel BER.
        assert np.mean(post_fec) < p / 3

    def test_coded_length(self):
        code = ConvolutionalCode()
        assert code.encode(np.zeros(10, dtype=np.uint8)).size == 2 * (10 + 6)
        assert code.coded_length(10) == 32

    def test_zero_termination_decodes_trailing_bits(self):
        """Without termination the last K-1 bits are unreliable; with
        it they decode exactly."""
        code = ConvolutionalCode()
        bits = np.ones(20, dtype=np.uint8)
        assert np.array_equal(code.decode(code.encode(bits), 20), bits)


class TestInterleaver:
    def test_roundtrip(self):
        il = BlockInterleaver(8, 16)
        bits = random_bits(300, rng=9)
        assert np.array_equal(
            il.deinterleave(il.interleave(bits), 300), bits
        )

    def test_burst_becomes_scattered(self):
        il = BlockInterleaver(rows=8, cols=16)
        bits = np.zeros(128, dtype=np.uint8)
        inter = il.interleave(bits)
        # A burst of 8 consecutive errors on the channel...
        inter[:8] ^= 1
        recovered = il.deinterleave(inter, 128)
        error_positions = np.flatnonzero(recovered)
        # ...lands at least `cols` apart after deinterleaving.
        gaps = np.diff(error_positions)
        assert np.all(gaps >= il.cols)

    def test_burst_plus_hamming_recovers(self):
        """The classic pairing: interleaving turns a burst into
        isolated single errors that Hamming can fix."""
        code = HammingCode()
        il = BlockInterleaver(rows=7, cols=10)
        bits = random_bits(40, rng=10)
        stream = il.interleave(code.encode(bits))
        stream[:7] ^= 1  # 7-bit burst (an entire codeword's worth)
        decoded = code.decode(il.deinterleave(stream, 70), 40)
        assert np.array_equal(decoded, bits)

    def test_rejects_bad_dims(self):
        with pytest.raises(ModemError):
            BlockInterleaver(0, 5)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_code("repetition-7"), RepetitionCode)
        assert isinstance(get_code("hamming74"), HammingCode)
        assert isinstance(get_code("conv-k7"), ConvolutionalCode)

    def test_unknown_raises(self):
        with pytest.raises(ModemError):
            get_code("turbo-9000")


class TestCodingProperties:
    @given(
        st.integers(1, 80),
        st.integers(0, 2**31 - 1),
        st.sampled_from(["repetition-3", "hamming74", "conv-k7"]),
    )
    @settings(deadline=None, max_examples=30)
    def test_roundtrip_property(self, n_bits, seed, name):
        code = get_code(name)
        bits = random_bits(n_bits, rng=seed)
        assert np.array_equal(
            code.decode(code.encode(bits), n_bits), bits
        )
