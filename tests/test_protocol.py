"""Tests for timeline, keyguard, controllers and the unlock session."""

import numpy as np
import pytest

from repro.config import SecurityConfig, SystemConfig
from repro.errors import LockedOutError, ProtocolError
from repro.offload.planner import Placement
from repro.protocol.controllers import (
    PhoneController,
    WatchController,
    _majority_decode,
    _repeat_bits,
)
from repro.protocol.events import SimClock, Timeline
from repro.protocol.keyguard import Keyguard, LockState
from repro.protocol.session import (
    AbortReason,
    SessionConfig,
    UnlockSession,
    ambient_similarity,
)
from repro.security.otp import OtpManager
from repro.sensors.traces import ActivityKind


class TestSimClockTimeline:
    def test_clock_advances(self):
        clock = SimClock()
        clock.advance(0.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(0.75)

    def test_clock_rejects_negative(self):
        with pytest.raises(ProtocolError):
            SimClock().advance(-1.0)

    def test_timeline_records_and_rolls_up(self):
        tl = Timeline()
        tl.record("msg_a", 0.1, "comm")
        tl.record("compute_x", 0.2, "compute")
        tl.record("msg_b", 0.3, "comm")
        assert tl.total == pytest.approx(0.6)
        cats = tl.by_category()
        assert cats["comm"] == pytest.approx(0.4)
        assert cats["compute"] == pytest.approx(0.2)
        assert tl.duration_of("msg_") == pytest.approx(0.4)

    def test_events_are_contiguous(self):
        tl = Timeline()
        tl.record("a", 0.1, "x")
        e = tl.record("b", 0.2, "x")
        assert e.start == pytest.approx(0.1)
        assert e.end == pytest.approx(0.3)


class TestKeyguard:
    def test_starts_locked(self):
        kg = Keyguard()
        assert kg.is_locked
        assert kg.state is LockState.LOCKED

    def test_trusted_unlock(self):
        kg = Keyguard()
        kg.trusted_unlock()
        assert not kg.is_locked

    def test_three_failures_require_pin(self):
        kg = Keyguard(SecurityConfig(max_failures=3))
        for _ in range(3):
            kg.trusted_failure()
        assert kg.pin_required
        with pytest.raises(LockedOutError):
            kg.trusted_unlock()

    def test_pin_clears_lockout(self):
        kg = Keyguard(SecurityConfig(max_failures=1))
        kg.trusted_failure()
        kg.pin_unlock()
        assert not kg.pin_required
        assert not kg.is_locked
        kg.lock()
        kg.trusted_unlock()
        assert not kg.is_locked

    def test_success_resets_failures(self):
        kg = Keyguard()
        kg.trusted_failure()
        kg.trusted_unlock()
        assert kg.failures == 0


class TestRepetitionCoding:
    def test_repeat_and_decode_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        coded = _repeat_bits(bits, 5)
        assert coded.size == 25
        assert np.array_equal(_majority_decode(coded, 5, 5), bits)

    def test_majority_corrects_minority_errors(self):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        coded = _repeat_bits(bits, 5)
        corrupted = coded.copy()
        corrupted[[0, 6, 11, 12]] ^= 1  # ≤2 errors per group of 5
        assert np.array_equal(_majority_decode(corrupted, 5, 3), bits)

    def test_short_received_vector_padded(self):
        bits = np.array([1, 1], dtype=np.uint8)
        coded = _repeat_bits(bits, 3)[:4]  # truncated in flight
        decoded = _majority_decode(coded, 3, 2)
        assert decoded.size == 2


class TestControllers:
    def test_phone_choose_volume_meets_rule(self, system_config):
        phone = PhoneController(system_config, OtpManager(b"k"))
        step, spl = phone.choose_volume(noise_spl=45.0)
        from repro.channel.acoustics import required_tx_spl

        target = required_tx_spl(45.0, system_config.min_snr_db, 1.0)
        assert spl >= min(target, phone.volume.max_spl)

    def test_phone_rejects_even_repetition(self, system_config):
        with pytest.raises(ProtocolError):
            PhoneController(system_config, OtpManager(b"k"), repetition=4)

    def test_prepare_token_uses_selected_mode(self, system_config):
        phone = PhoneController(system_config, OtpManager(b"k"))
        decision = phone.modulator.select(ebn0_db=40.0, max_ber=0.1)
        tt = phone.prepare_token(decision, None, tx_spl=75.0)
        assert tt.mode == "8PSK"
        assert tt.coded_bits == 31 * 5
        assert tt.result.waveform.size > 0

    def test_verify_token_bits_success_unlocks(self, system_config):
        phone = PhoneController(system_config, OtpManager(b"k"))
        decision = phone.modulator.select(40.0, 0.1)
        tt = phone.prepare_token(decision, None, 75.0)
        coded = _repeat_bits(
            np.array(
                [(tt.token >> (30 - i)) & 1 for i in range(31)],
                dtype=np.uint8,
            ),
            phone.repetition,
        )
        ok, ber = phone.verify_token_bits(tt, coded)
        assert ok
        assert ber == 0.0
        assert not phone.keyguard.is_locked

    def test_verify_wrong_bits_counts_failure(self, system_config):
        phone = PhoneController(system_config, OtpManager(b"k"))
        decision = phone.modulator.select(40.0, 0.1)
        tt = phone.prepare_token(decision, None, 75.0)
        garbage = np.ones(tt.coded_bits, dtype=np.uint8)
        ok, ber = phone.verify_token_bits(tt, garbage)
        assert not ok
        assert phone.keyguard.failures == 1

    def test_watch_demodulates_phone_frame(self, system_config):
        phone = PhoneController(system_config, OtpManager(b"k"))
        watch = WatchController(system_config)
        decision = phone.modulator.select(40.0, 0.1)
        tt = phone.prepare_token(decision, None, 75.0)
        cfg_msg = phone.channel_config_message(tt)
        bits = watch.demodulate(tt.result.waveform, cfg_msg)
        ok, ber = phone.verify_token_bits(tt, bits)
        assert ok and ber == 0.0


class TestAmbientSimilarity:
    def test_same_scene_high_similarity(self, office_link, rng):
        a = office_link.record_ambient(0.3, rng=rng)
        b = office_link.record_ambient(0.3, rng=rng)
        assert ambient_similarity(a, b, 44100.0) > 0.6

    def test_different_scenes_lower_similarity(self, rng):
        from repro.channel.link import AcousticLink
        from repro.channel.scenarios import get_environment

        cafe = get_environment("cafe")
        quiet = get_environment("quiet_room")
        a = AcousticLink(noise=cafe.noise, room=cafe.room).record_ambient(
            0.3, rng=rng
        )
        b = AcousticLink(noise=quiet.noise, room=quiet.room).record_ambient(
            0.3, rng=rng
        )
        same_a = AcousticLink(
            noise=cafe.noise, room=cafe.room
        ).record_ambient(0.3, rng=rng)
        assert ambient_similarity(a, b, 44100.0) < ambient_similarity(
            a, same_a, 44100.0
        )


class TestUnlockSession:
    def test_successful_unlock(self):
        cfg = SessionConfig(environment="office", distance_m=0.4, seed=42)
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run()
        assert outcome.unlocked
        assert outcome.abort_reason is AbortReason.NONE
        assert outcome.mode in ("8PSK", "QPSK", "QASK")
        assert outcome.raw_ber is not None and outcome.raw_ber < 0.2
        assert outcome.total_delay_s > 0.3

    def test_motion_mismatch_aborts_early(self):
        cfg = SessionConfig(
            environment="office", co_located=False, seed=43
        )
        outcomes = [
            UnlockSession(cfg, otp=OtpManager(b"k")).run(
                rng=np.random.default_rng(1000 + i)
            )
            for i in range(8)
        ]
        aborted = [
            o for o in outcomes
            if o.abort_reason is AbortReason.MOTION_MISMATCH
        ]
        assert len(aborted) >= 4
        for o in aborted:
            assert o.mode is None  # phase 2 never ran

    def test_far_away_fails(self):
        cfg = SessionConfig(
            environment="office", distance_m=6.0, seed=44,
            use_motion_filter=False, use_noise_filter=False,
        )
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run()
        assert not outcome.unlocked

    def test_timeline_has_expected_categories(self):
        cfg = SessionConfig(environment="office", seed=45)
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run()
        cats = outcome.timeline.by_category()
        for expected in ("stack", "comm", "audio"):
            assert expected in cats

    def test_offload_moves_compute_to_phone(self):
        base = dict(environment="office", seed=46)
        local = UnlockSession(
            SessionConfig(offload=Placement.WATCH_LOCAL, **base),
            otp=OtpManager(b"k"),
        ).run()
        off = UnlockSession(
            SessionConfig(offload=Placement.PHONE_OFFLOAD, **base),
            otp=OtpManager(b"k"),
        ).run()
        local_labels = [e.label for e in local.timeline.events]
        off_labels = [e.label for e in off.timeline.events]
        assert any("watch" in l for l in local_labels if "processing" in l)
        assert any("phone" in l for l in off_labels if "processing" in l)
        assert any("audio_transfer" in l for l in off_labels)

    def test_energy_charged_to_both_devices(self):
        cfg = SessionConfig(environment="office", seed=47)
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run()
        assert outcome.watch_energy_j > 0
        assert outcome.phone_energy_j > 0

    def test_security_state_persists_across_attempts(self):
        otp = OtpManager(b"k")
        cfg = SessionConfig(environment="office", seed=48)
        phone = PhoneController(cfg.system, otp)
        for i in range(3):
            outcome = UnlockSession(cfg, otp=otp, phone=phone).run(
                rng=np.random.default_rng(2000 + i)
            )
            assert outcome.unlocked
        assert otp.counter == 3

    def test_ultrasound_band_session(self):
        cfg = SessionConfig(
            environment="office", band="ultrasound", distance_m=0.3,
            seed=49,
        )
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run()
        assert outcome.unlocked

    def test_invalid_wireless_rejected(self):
        from repro.errors import WearLockError

        with pytest.raises(WearLockError):
            SessionConfig(wireless="carrier-pigeon")
