"""Tests for windowed-sinc FIR design and filtering."""

import numpy as np
import pytest

from repro.dsp.filters import (
    design_bandpass_fir,
    design_lowpass_fir,
    fir_filter,
)
from repro.errors import DspError


def _tone(freq, fs=44100.0, n=8192):
    return np.sin(2 * np.pi * freq * np.arange(n) / fs)


def _rms(x):
    return np.sqrt(np.mean(x * x))


class TestLowpassDesign:
    def test_unity_dc_gain(self):
        taps = design_lowpass_fir(7000.0, 44100.0)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_passband_and_stopband(self):
        taps = design_lowpass_fir(7000.0, 44100.0, num_taps=257)
        passed = fir_filter(_tone(3000.0), taps)
        stopped = fir_filter(_tone(15000.0), taps)
        assert _rms(passed) > 0.9 * _rms(_tone(3000.0))
        assert _rms(stopped) < 0.01 * _rms(_tone(15000.0))

    def test_linear_phase_symmetry(self):
        taps = design_lowpass_fir(5000.0, 44100.0, num_taps=101)
        assert np.allclose(taps, taps[::-1])

    def test_rejects_even_taps(self):
        with pytest.raises(DspError):
            design_lowpass_fir(5000.0, 44100.0, num_taps=100)

    def test_rejects_cutoff_beyond_nyquist(self):
        with pytest.raises(DspError):
            design_lowpass_fir(30000.0, 44100.0)


class TestBandpassDesign:
    def test_passes_center_rejects_outside(self):
        taps = design_bandpass_fir(2000.0, 6000.0, 44100.0, num_taps=257)
        center = fir_filter(_tone(4000.0), taps)
        low = fir_filter(_tone(200.0), taps)
        high = fir_filter(_tone(12000.0), taps)
        assert _rms(center) > 0.8 * _rms(_tone(4000.0))
        assert _rms(low) < 0.05
        assert _rms(high) < 0.05

    def test_rejects_inverted_band(self):
        with pytest.raises(DspError):
            design_bandpass_fir(6000.0, 2000.0, 44100.0)


class TestFirFilter:
    def test_output_length_matches_input(self):
        taps = design_lowpass_fir(5000.0, 44100.0, num_taps=65)
        x = np.random.default_rng(0).standard_normal(1000)
        assert fir_filter(x, taps).size == 1000

    def test_group_delay_compensated(self):
        # An impulse through a symmetric FIR should come out centered
        # at the impulse position, not shifted by the filter delay.
        taps = design_lowpass_fir(8000.0, 44100.0, num_taps=65)
        x = np.zeros(256)
        x[100] = 1.0
        y = fir_filter(x, taps)
        assert np.argmax(np.abs(y)) == 100

    def test_identity_filter(self):
        x = np.random.default_rng(1).standard_normal(128)
        assert np.allclose(fir_filter(x, np.array([1.0])), x)

    def test_empty_signal(self):
        assert fir_filter(np.zeros(0), np.array([1.0])).size == 0

    def test_rejects_empty_taps(self):
        with pytest.raises(DspError):
            fir_filter(np.ones(10), np.zeros(0))
