"""Tests for channel probing: detection, SNR, re-planning, NLOS stats."""

import numpy as np
import pytest

from repro.channel.link import AcousticLink
from repro.channel.scenarios import get_environment
from repro.config import ModemConfig
from repro.modem.probe import ChannelProber, ProbeReport


@pytest.fixture
def config():
    return ModemConfig()


@pytest.fixture
def prober(config):
    return ChannelProber(config)


class TestChannelProber:
    def test_probe_waveform_nonempty(self, prober):
        wave = prober.build_probe()
        assert wave.size > 0
        assert np.isfinite(wave).all()

    def test_analyze_clean_loopback(self, prober):
        wave = prober.build_probe()
        recording = np.concatenate([np.zeros(2000), wave, np.zeros(500)])
        report = prober.analyze(recording)
        assert report.detected
        assert report.preamble_score > 0.9
        assert report.psnr_db > 20.0

    def test_analyze_through_quiet_channel(self, prober, quiet_link, rng):
        recording, _ = quiet_link.transmit(
            prober.build_probe(), tx_spl=70.0, rng=rng
        )
        report = prober.analyze(recording)
        assert report.detected
        assert report.psnr_db > 15.0
        assert report.noise_spl < 40.0
        assert report.recommended_plan is not None

    def test_failed_probe_on_silence(self, prober):
        report = prober.analyze(np.zeros(30000))
        assert not report.detected
        assert report.psnr_db == float("-inf")
        assert report.recommended_plan is None

    def test_snr_decreases_with_noise(self, prober, rng):
        env_quiet = get_environment("quiet_room")
        env_loud = get_environment("cafe")
        psnrs = {}
        for name, env in (("quiet", env_quiet), ("loud", env_loud)):
            link = AcousticLink(
                room=env.room, noise=env.noise, distance_m=0.3, seed=3
            )
            rec, _ = link.transmit(
                prober.build_probe(), tx_spl=75.0,
                rng=np.random.default_rng(3),
            )
            psnrs[name] = prober.analyze(rec).psnr_db
        assert psnrs["quiet"] > psnrs["loud"] + 6.0

    def test_replans_around_jammer(self, prober, config):
        env = get_environment("quiet_room")
        plan = prober.plan
        jam_bins = (17, 21)
        jam_freqs = [b * config.subchannel_bandwidth for b in jam_bins]
        noise = env.noise.with_jammer(jam_freqs, 60.0)
        link = AcousticLink(
            room=env.room, noise=noise, distance_m=0.2, seed=4,
            leading_silence=0.15,
        )
        rec, _ = link.transmit(
            prober.build_probe(), tx_spl=72.0,
            rng=np.random.default_rng(4),
        )
        report = prober.analyze(rec)
        assert report.detected
        assert report.recommended_plan is not None
        for b in jam_bins:
            assert b not in report.recommended_plan.data

    def test_ebn0_depends_on_mode_rate(self, prober, config):
        report = ProbeReport(
            detected=True,
            preamble_score=0.9,
            tau_rms=1e-5,
            noise_spl=30.0,
            psnr_db=20.0,
            noise_per_bin=None,
            recommended_plan=None,
        )
        plan = prober.plan
        e_qpsk = report.ebn0_db(config, plan, "QPSK")
        e_8psk = report.ebn0_db(config, plan, "8PSK")
        # Higher rate → less energy per bit at the same C/N.
        assert e_8psk < e_qpsk

    def test_failed_report_factory(self):
        report = ProbeReport.failed(0.01)
        assert not report.detected
        assert report.preamble_score == 0.01
        assert report.tau_rms == float("inf")
