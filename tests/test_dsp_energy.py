"""Tests for RMS/SPL conversions and the energy detector."""

import numpy as np
import pytest

from repro.dsp.energy import (
    P_REF,
    EnergyDetector,
    amplitude_to_spl,
    db,
    from_db,
    rms,
    signal_spl,
    spl_to_amplitude,
)
from repro.errors import DspError


class TestConversions:
    def test_rms_of_constant(self):
        assert rms(np.full(100, 0.5)) == pytest.approx(0.5)

    def test_rms_of_sine(self):
        x = np.sin(np.linspace(0, 200 * np.pi, 100_000))
        assert rms(x) == pytest.approx(1 / np.sqrt(2), rel=1e-3)

    def test_rms_empty_is_zero(self):
        assert rms(np.zeros(0)) == 0.0

    def test_spl_roundtrip(self):
        for spl in (0.0, 20.0, 60.0, 94.0):
            assert amplitude_to_spl(spl_to_amplitude(spl)) == pytest.approx(spl)

    def test_reference_is_zero_spl(self):
        assert amplitude_to_spl(P_REF) == pytest.approx(0.0)

    def test_full_scale_is_about_94_spl(self):
        assert amplitude_to_spl(1.0) == pytest.approx(93.98, abs=0.01)

    def test_db_roundtrip(self):
        assert from_db(db(0.25)) == pytest.approx(0.25)

    def test_db_of_nonpositive_is_neg_inf(self):
        assert db(0.0) == -np.inf

    def test_six_db_per_doubling(self):
        assert db(2.0) == pytest.approx(6.0206, abs=1e-3)

    def test_signal_spl_matches_rms_conversion(self):
        x = np.full(1000, spl_to_amplitude(40.0))
        assert signal_spl(x) == pytest.approx(40.0)


class TestEnergyDetector:
    def _burst(self, spl, start, length, total, fs_scale=1.0):
        x = np.zeros(total)
        rng = np.random.default_rng(0)
        x[start: start + length] = spl_to_amplitude(spl) * np.sqrt(2) * np.sin(
            np.linspace(0, 50 * np.pi, length)
        )
        return x

    def test_detects_loud_burst(self):
        x = self._burst(60.0, 1000, 2000, 5000)
        det = EnergyDetector(frame_size=256, threshold_spl=40.0)
        regions = det.active_regions(x)
        assert len(regions) == 1
        start, end = regions[0]
        assert start <= 1000 < end
        assert end >= 3000 - 256

    def test_silence_is_silent(self):
        det = EnergyDetector(threshold_spl=30.0)
        assert det.is_silent(np.zeros(5000))

    def test_quiet_signal_below_threshold(self):
        x = self._burst(20.0, 0, 5000, 5000)
        det = EnergyDetector(threshold_spl=40.0)
        assert det.is_silent(x)

    def test_hangover_merges_brief_gaps(self):
        x = np.concatenate(
            [
                self._burst(60.0, 0, 1024, 1024),
                np.zeros(256),
                self._burst(60.0, 0, 1024, 1024),
            ]
        )
        det = EnergyDetector(
            frame_size=256, threshold_spl=40.0, hangover_frames=2
        )
        assert len(det.active_regions(x)) == 1

    def test_frame_spl_length(self):
        det = EnergyDetector(frame_size=100)
        assert det.frame_spl(np.zeros(1000)).size == 10
        assert det.frame_spl(np.zeros(1050)).size == 11

    def test_rejects_bad_frame_size(self):
        with pytest.raises(DspError):
            EnergyDetector(frame_size=0)
