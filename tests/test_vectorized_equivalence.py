"""Golden equivalence: vectorized modem vs the frozen sequential reference.

The signal-plane refactor batched the per-symbol transmit and receive
paths (stacked FFTs, batched pilot estimation/equalization).  These
tests pin the refactor's contract: under fixed seeds, every observable
output — bits, waveforms, pilot SNR, Eb/N0, fine-sync offsets, delay
profiles, equalized symbols — is **bit-identical** (``==``, not
``approx``) to the pre-refactor implementation preserved verbatim in
:mod:`repro.modem.reference`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.link import AcousticLink
from repro.channel.scenarios import get_environment
from repro.config import ModemConfig
from repro.modem import (
    OfdmReceiver,
    OfdmTransmitter,
    get_constellation,
)
from repro.modem.bits import random_bits
from repro.modem.reference import (
    reference_fine_sync_offset,
    reference_modulate,
    reference_receive,
)
from repro.modem.synchronizer import (
    fine_sync_offset,
    fine_sync_offsets_batch,
)

MODES = ("QASK", "QPSK", "8PSK")
EQUALIZERS = (False, True)  # linear_equalizer ablation flag


def _fixed_recording(config, constellation, seed):
    """One deterministic transmit → channel → recording round trip."""
    bits = random_bits(240, rng=np.random.default_rng(seed))
    tx = OfdmTransmitter(config, constellation)
    modulated = tx.modulate(bits)
    env = get_environment("quiet_room")
    link = AcousticLink(
        room=env.room, noise=env.noise, distance_m=0.3, seed=seed
    )
    recording, _ = link.transmit(
        modulated.waveform, tx_spl=72.0, rng=np.random.default_rng(seed)
    )
    return bits, modulated, recording


class TestTransmitEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("hermitian", (False, True))
    def test_waveform_bit_identical(self, modem_config, mode, hermitian):
        constellation = get_constellation(mode)
        bits = random_bits(240, rng=np.random.default_rng(99))
        ref = reference_modulate(
            modem_config, constellation, bits, hermitian=hermitian
        )
        tx = OfdmTransmitter(
            modem_config, constellation, hermitian=hermitian
        )
        new = tx.modulate(bits)
        assert np.array_equal(ref.waveform, new.waveform)
        assert np.array_equal(ref.padded_bits, new.padded_bits)
        assert ref.n_payload_bits == new.n_payload_bits

    @pytest.mark.parametrize("mode", MODES)
    def test_single_symbol_payload(self, modem_config, mode):
        constellation = get_constellation(mode)
        tx = OfdmTransmitter(modem_config, constellation)
        bits = random_bits(
            tx.bits_per_symbol, rng=np.random.default_rng(5)
        )
        ref = reference_modulate(modem_config, constellation, bits)
        assert np.array_equal(ref.waveform, tx.modulate(bits).waveform)


class TestReceiveEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("linear_eq", EQUALIZERS)
    def test_receive_bit_identical(self, modem_config, mode, linear_eq):
        constellation = get_constellation(mode)
        _, _, recording = _fixed_recording(modem_config, constellation, 42)
        ref = reference_receive(
            modem_config,
            constellation,
            recording,
            240,
            linear_equalizer=linear_eq,
        )
        rx = OfdmReceiver(
            modem_config, constellation, linear_equalizer=linear_eq
        )
        new = rx.receive(recording, expected_bits=240)

        assert np.array_equal(ref.bits, new.bits)
        assert ref.psnr_db == new.psnr_db
        assert ref.ebn0_db == new.ebn0_db
        assert ref.preamble_score == new.preamble_score
        assert ref.fine_offsets == new.fine_offsets
        assert ref.noise_spl == new.noise_spl
        assert np.array_equal(ref.delay_profile, new.delay_profile)
        assert np.array_equal(
            ref.equalized_symbols, new.equalized_symbols
        )

    @pytest.mark.parametrize("mode", MODES)
    def test_fine_sync_disabled(self, modem_config, mode):
        constellation = get_constellation(mode)
        _, _, recording = _fixed_recording(modem_config, constellation, 17)
        ref = reference_receive(
            modem_config, constellation, recording, 240, fine_sync=False
        )
        rx = OfdmReceiver(modem_config, constellation, fine_sync=False)
        new = rx.receive(recording, expected_bits=240)
        assert np.array_equal(ref.bits, new.bits)
        assert ref.psnr_db == new.psnr_db
        assert ref.fine_offsets == new.fine_offsets

    def test_multiple_seeds_end_to_end(self, modem_config):
        constellation = get_constellation("QPSK")
        for seed in (1, 2, 3, 11):
            _, _, recording = _fixed_recording(
                modem_config, constellation, seed
            )
            ref = reference_receive(
                modem_config, constellation, recording, 240
            )
            new = OfdmReceiver(modem_config, constellation).receive(
                recording, 240
            )
            assert np.array_equal(ref.bits, new.bits), seed
            assert ref.psnr_db == new.psnr_db, seed


class TestFineSyncEquivalence:
    """The banded batch fine-sync must reproduce the scalar loop exactly."""

    def test_fuzz_against_reference(self, modem_config):
        rng = np.random.default_rng(2024)
        n = modem_config.fft_size + modem_config.cp_length
        for trial in range(50):
            x = rng.standard_normal(6 * n)
            # Plant a genuine CP structure at a random spot so the
            # search has something to lock onto.
            body = rng.standard_normal(modem_config.fft_size)
            start = int(rng.integers(2 * n, 3 * n))
            cp = body[-modem_config.cp_length:]
            x[start: start + cp.size] += 3.0 * cp
            x[start + cp.size: start + cp.size + body.size] += 3.0 * body
            for cp_start in (start - 5, start, start + 7):
                assert fine_sync_offset(
                    x, cp_start, modem_config
                ) == reference_fine_sync_offset(
                    x, cp_start, modem_config
                ), (trial, cp_start)

    def test_edges_match_reference(self, modem_config):
        rng = np.random.default_rng(7)
        n = modem_config.fft_size + modem_config.cp_length
        x = rng.standard_normal(3 * n)
        for cp_start in (-100, 0, 5, x.size - n, x.size + 50):
            assert fine_sync_offset(
                x, cp_start, modem_config
            ) == reference_fine_sync_offset(x, cp_start, modem_config)

    def test_all_zero_signal(self, modem_config):
        x = np.zeros(4 * (modem_config.fft_size + modem_config.cp_length))
        assert fine_sync_offset(x, 100, modem_config) == 0
        assert reference_fine_sync_offset(x, 100, modem_config) == 0

    def test_batch_matches_scalar(self, modem_config):
        """The per-frame batch must equal per-start scalar calls."""
        rng = np.random.default_rng(31)
        n = modem_config.fft_size + modem_config.cp_length
        x = rng.standard_normal(8 * n)
        cp_starts = [-50, 0, n, 2 * n + 3, 5 * n, x.size - n, x.size]
        batch = fine_sync_offsets_batch(x, cp_starts, modem_config)
        for start, got in zip(cp_starts, batch):
            assert got == reference_fine_sync_offset(
                x, start, modem_config
            ), start
