"""BatchRunner: grids, per-cell seeding, serial/parallel identity."""

import json

import pytest

from repro.errors import WearLockError
from repro.eval.batch import (
    BatchRunner,
    BatchTask,
    cell_seed,
    grid_tasks,
)
from repro.eval.experiments import (
    fig7_range,
    fig12_total_delay,
    table1_field_test,
)
from repro.eval.runner import _jsonable


def _square(x, seed):
    return x * x + seed * 0


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed(7, "a", 1) == cell_seed(7, "a", 1)

    def test_sensitive_to_seed_and_coords(self):
        base = cell_seed(7, "a", 1)
        assert cell_seed(8, "a", 1) != base
        assert cell_seed(7, "a", 2) != base
        assert cell_seed(7, "b", 1) != base

    def test_within_bound(self):
        for coords in (("x",), ("x", 0), (1.5, "y", 3)):
            assert 0 <= cell_seed(123, *coords) < 2**31


class TestGridTasks:
    def test_cartesian_product_with_seeds(self):
        tasks = grid_tasks(3, mode=("QPSK", "8PSK"), d=(0.25, 0.5))
        assert len(tasks) == 4
        assert [t.key for t in tasks] == [
            ("QPSK", 0.25), ("QPSK", 0.5), ("8PSK", 0.25), ("8PSK", 0.5),
        ]
        for t in tasks:
            assert t.params["seed"] == cell_seed(3, *t.key)


class TestBatchRunner:
    def test_results_in_task_order(self):
        tasks = [
            BatchTask(key=(i,), params=dict(x=i, seed=0)) for i in range(10)
        ]
        for workers in (None, 4):
            results = BatchRunner(_square, workers=workers).run(tasks)
            assert [r.key for r in results] == [(i,) for i in range(10)]
            assert [r.value for r in results] == [i * i for i in range(10)]

    def test_serial_and_parallel_identical(self):
        tasks = [
            BatchTask(key=(i,), params=dict(x=i, seed=i)) for i in range(8)
        ]
        serial = BatchRunner(_square).run(tasks)
        threaded = BatchRunner(_square, workers=3).run(tasks)
        assert [r.value for r in serial] == [r.value for r in threaded]

    def test_run_dict_rejects_duplicate_keys(self):
        tasks = [
            BatchTask(key=(1,), params=dict(x=1, seed=0)),
            BatchTask(key=(1,), params=dict(x=2, seed=0)),
        ]
        with pytest.raises(WearLockError):
            BatchRunner(_square).run_dict(tasks)

    def test_rejects_bad_executor_and_workers(self):
        with pytest.raises(WearLockError):
            BatchRunner(_square, executor="rayon")
        with pytest.raises(WearLockError):
            BatchRunner(_square, workers=-1)

    def test_worker_exception_propagates(self):
        def boom(x, seed):
            raise ValueError("cell failed")

        tasks = [BatchTask(key=(0,), params=dict(x=0, seed=0))]
        with pytest.raises(ValueError):
            BatchRunner(boom, workers=2).run(tasks)


class TestExperimentByteIdentity:
    """The ported sweeps return byte-identical JSON serial vs parallel."""

    @staticmethod
    def _dumps(result):
        return json.dumps(_jsonable(result), sort_keys=True)

    def test_fig7_serial_vs_parallel(self):
        kwargs = dict(n_trials=2, distances=(0.25, 0.5))
        serial = self._dumps(fig7_range(workers=None, **kwargs))
        fanned = self._dumps(fig7_range(workers=3, **kwargs))
        assert serial == fanned

    def test_table1_serial_vs_parallel(self):
        serial = self._dumps(table1_field_test(n_trials=2, workers=None))
        fanned = self._dumps(table1_field_test(n_trials=2, workers=4))
        assert serial == fanned

    def test_fig12_serial_vs_parallel(self):
        serial = self._dumps(fig12_total_delay(n_trials=2, workers=None))
        fanned = self._dumps(fig12_total_delay(n_trials=2, workers=3))
        assert serial == fanned

    def test_table1_schema_unchanged(self):
        result = table1_field_test(n_trials=1)
        assert set(result) == {"cells", "average_ber"}
        assert len(result["cells"]) == 16  # 2 bands × 2 hands × 4 scenes
        for cell in result["cells"]:
            assert set(cell) == {"band", "hand", "location", "ber", "mode"}
