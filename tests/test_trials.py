"""Trial harness: matrix integrity, judges, trajectory, report."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, WearLockError
from repro.trials import (
    MATRIX_SEED,
    TIERS,
    TRIAL_MATRIX,
    JudgeSpec,
    TrialCell,
    append_point,
    cell_by_id,
    cells_for_tier,
    judge_document,
    load_matrix_toml,
    load_trajectory,
    metric_series,
    save_trajectory,
    sparkline,
)
from repro.trials.judges import (
    JUDGE_REGISTRY,
    DeterminismJudge,
    EnvelopeJudge,
    RegressionJudge,
    resolve_path,
)
from repro.trials.report import (
    experiments_matrix_block,
    refresh_experiments,
    render_trials_report,
    repo_root,
)
from repro.trials.runner import canonical_json


# --------------------------------------------------------------- matrix


class TestMatrixIntegrity:
    def test_cell_ids_unique(self):
        ids = [c.cell_id for c in TRIAL_MATRIX]
        assert len(ids) == len(set(ids))

    def test_every_judge_is_registered(self):
        for cell in TRIAL_MATRIX:
            for spec in cell.judges:
                assert spec.judge in JUDGE_REGISTRY, cell.cell_id

    def test_tiers_are_cumulative(self):
        smoke = {c.cell_id for c in cells_for_tier("smoke")}
        nightly = {c.cell_id for c in cells_for_tier("nightly")}
        full = {c.cell_id for c in cells_for_tier("full-fleet")}
        assert smoke < nightly < full
        assert full == {c.cell_id for c in TRIAL_MATRIX}

    def test_smoke_tier_carries_the_gates(self):
        smoke = {c.cell_id for c in cells_for_tier("smoke")}
        assert "perf/trend-gate" in smoke
        assert "fleet/smoke-determinism" in smoke
        assert "paper/fig12-delay" in smoke

    def test_unknown_tier_and_cell_raise(self):
        with pytest.raises(ConfigurationError):
            cells_for_tier("weekly")
        with pytest.raises(ConfigurationError):
            cell_by_id("paper/fig99-nope")

    def test_cell_validation_rejects_bad_specs(self):
        judge = (JudgeSpec("envelope", {}),)
        with pytest.raises(ConfigurationError):
            TrialCell("x", "weekly", "experiment", {}, judge)
        with pytest.raises(ConfigurationError):
            TrialCell("x", "smoke", "quantum", {}, judge)
        with pytest.raises(ConfigurationError):
            TrialCell("x", "smoke", "experiment", {}, ())

    def test_command_round_trips_cell_id(self):
        cell = cell_by_id("paper/fig5-ber")
        assert "--cell paper/fig5-ber" in cell.command()

    def test_load_matrix_toml(self, tmp_path: Path):
        toml = tmp_path / "pack.toml"
        toml.write_text(
            '[[cell]]\n'
            'cell_id = "custom/one"\n'
            'workload = "experiment"\n'
            'tier = "nightly"\n'
            'params = {name = "fig5"}\n'
            '[[cell.judge]]\n'
            'judge = "envelope"\n'
            '[cell.judge.params]\n'
            'checks = [{path = "payload/x", hi = 1.0}]\n'
        )
        cells = load_matrix_toml(toml)
        assert len(cells) == 1
        assert cells[0].cell_id == "custom/one"
        assert cells[0].tier == "nightly"
        assert cells[0].judges[0].judge == "envelope"
        assert cells[0].judges[0].params["checks"][0]["path"] == "payload/x"


# ---------------------------------------------------------- resolve_path


class TestResolvePath:
    DOC = {
        "metrics": {"ber": 0.08, "digests": ["a", "a"]},
        "payload": {
            "rows": [{"v": 1.0}, {"v": 3.0}],
            "by_mode": {"qpsk": 0.1, "bpsk": 0.05},
        },
    }

    def test_dict_and_list_descent(self):
        assert resolve_path(self.DOC, "metrics/ber") == 0.08
        assert resolve_path(self.DOC, "payload/rows/1/v") == 3.0
        assert resolve_path(self.DOC, "payload/rows/-1/v") == 3.0

    def test_wildcard_fans_out_sorted(self):
        assert resolve_path(self.DOC, "payload/rows/*/v") == [1.0, 3.0]
        # dict fan-out is in sorted-key order: bpsk before qpsk.
        assert resolve_path(self.DOC, "payload/by_mode/*") == [0.05, 0.1]

    def test_missing_paths_raise_wearlock_error(self):
        for path in ("metrics/nope", "payload/rows/7/v",
                     "payload/rows/x", "metrics/ber/deeper"):
            with pytest.raises(WearLockError):
                resolve_path(self.DOC, path)


# ---------------------------------------------------------------- judges


def _env_verdict(result, **params):
    return EnvelopeJudge().judge("t/cell", result, params, {})


class TestEnvelopeJudge:
    RESULT = {"metrics": {}, "payload": {"ber": 0.08, "other": 0.20}}

    def test_passes_inside_band(self):
        v = _env_verdict(
            self.RESULT,
            checks=[{"path": "payload/ber", "lo": 0.05, "hi": 0.1}],
            orderings=[["payload/ber", "payload/other"]],
        )
        assert v.passed
        assert "all 2 envelope checks" in v.rationale

    def test_band_edges_are_inclusive(self):
        for edge in ({"lo": 0.08}, {"hi": 0.08},
                     {"lo": 0.08, "hi": 0.08}):
            v = _env_verdict(
                self.RESULT, checks=[{"path": "payload/ber", **edge}]
            )
            assert v.passed, edge

    def test_fails_outside_band_either_side(self):
        lo = _env_verdict(
            self.RESULT, checks=[{"path": "payload/ber", "lo": 0.09}]
        )
        hi = _env_verdict(
            self.RESULT, checks=[{"path": "payload/ber", "hi": 0.07}]
        )
        assert not lo.passed and "< lo" in lo.rationale
        assert not hi.passed and "> hi" in hi.rationale

    def test_ordering_violation_fails(self):
        v = _env_verdict(
            self.RESULT,
            orderings=[["payload/other", "payload/ber"]],
        )
        assert not v.passed
        assert "ordering violated" in v.rationale

    def test_missing_path_is_a_failed_verdict_not_a_crash(self):
        v = _env_verdict(
            self.RESULT, checks=[{"path": "payload/absent", "hi": 1}]
        )
        assert not v.passed
        assert v.details["checks"][0]["error"]

    def test_reducers(self):
        result = {"payload": {"xs": [0.1, 0.4, 0.3]}}
        v = _env_verdict(
            result,
            checks=[
                {"path": "payload/xs/*", "reduce": "max", "hi": 0.4},
                {"path": "payload/xs/*", "reduce": "min", "lo": 0.1},
                {"path": "payload/xs/*", "reduce": "mean", "hi": 0.3},
                {"path": "payload/xs/*", "reduce": "len", "lo": 3},
            ],
        )
        assert v.passed

    def test_unknown_reducer_fails_the_check(self):
        # ConfigurationError is a WearLockError, so the judge records
        # it as a failed check rather than crashing the tier.
        v = _env_verdict(
            {"payload": {"xs": [0.1]}},
            checks=[{"path": "payload/xs/*", "reduce": "median"}],
        )
        assert not v.passed
        assert "median" in v.details["checks"][0]["error"]


class TestDeterminismJudge:
    def judge(self, digests):
        return DeterminismJudge().judge(
            "t/det", {"metrics": {"digests": digests}}, {}, {}
        )

    def test_identical_digests_pass(self):
        v = self.judge(["abc123def456", "abc123def456", "abc123def456"])
        assert v.passed
        assert "byte-identical" in v.rationale

    def test_any_divergence_fails(self):
        v = self.judge(["abc123def456", "abc123def456", "fff000fff000"])
        assert not v.passed
        assert "2 distinct" in v.rationale

    def test_fewer_than_two_digests_fail(self):
        assert not self.judge(["only-one"]).passed
        assert not self.judge([]).passed


class TestRegressionJudge:
    def judge(self, points, tolerance=0.15, direction="higher"):
        trajectory = {"kind": "wearlock-trajectory", "points": points}
        return RegressionJudge().judge(
            "perf/gate",
            {},
            {"metric": "speedup", "tolerance": tolerance,
             "direction": direction},
            {"trajectory": trajectory},
        )

    @staticmethod
    def pts(*values):
        return [
            {"label": f"pr{i}", "metrics": {"speedup": v}}
            for i, v in enumerate(values)
        ]

    def test_no_points_fails_loudly(self):
        assert not self.judge([]).passed

    def test_single_point_passes_vacuously(self):
        v = self.judge(self.pts(3.0))
        assert v.passed
        assert "no baseline" in v.rationale

    def test_twenty_percent_slowdown_is_rejected(self):
        """The acceptance criterion: a deliberately injected 20%
        slowdown must fail the 15%-tolerance trend gate."""
        v = self.judge(self.pts(3.0, 3.0 * 0.8))
        assert not v.passed
        assert "VIOLATED" in v.rationale

    def test_slowdown_within_tolerance_passes(self):
        assert self.judge(self.pts(3.0, 3.0 * 0.9)).passed
        assert self.judge(self.pts(3.0, 3.2)).passed

    def test_boundary_value_passes(self):
        # latest == baseline * (1 - tolerance) exactly: bound holds.
        assert self.judge(self.pts(2.0, 2.0 * 0.85)).passed

    def test_lower_is_better_direction(self):
        grew = self.pts(1.0, 1.3)
        assert not self.judge(grew, direction="lower").passed
        assert self.judge(self.pts(1.0, 1.1), direction="lower").passed

    def test_baseline_is_previous_carrying_point(self):
        # Points missing the metric are skipped when picking baseline.
        points = self.pts(3.0, 2.95) + [
            {"label": "prX", "metrics": {"other": 1.0}}
        ]
        v = self.judge(points)
        assert v.passed
        assert v.details["baseline"] == 3.0

    def test_bad_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            self.judge(self.pts(1.0, 1.0), direction="sideways")


class TestJudgeDocument:
    def test_missing_cell_fails_the_document(self):
        cell = cell_by_id("perf/trend-gate")
        doc = {"kind": "wearlock-trials", "results": {}}
        verdicts, ok = judge_document(doc, [cell], {})
        assert not ok
        assert verdicts[0].judge == "missing"


# ------------------------------------------------------------ trajectory


class TestTrajectory:
    def test_append_is_idempotent(self):
        doc = {"kind": "wearlock-trajectory", "points": []}
        one = append_point(doc, "pr1", {"speedup": 2.0})
        two = append_point(one, "pr1", {"speedup": 2.0})
        assert one == two
        assert len(two["points"]) == 1

    def test_same_label_new_metrics_replaces_in_place(self):
        doc = append_point(
            {"kind": "wearlock-trajectory", "points": []},
            "pr1", {"speedup": 2.0},
        )
        doc = append_point(doc, "pr2", {"speedup": 2.5})
        doc = append_point(doc, "pr1", {"speedup": 2.1})
        assert [p["label"] for p in doc["points"]] == ["pr1", "pr2"]
        assert doc["points"][0]["metrics"]["speedup"] == 2.1

    def test_empty_label_rejected(self):
        with pytest.raises(WearLockError):
            append_point({"points": []}, "", {"speedup": 1.0})

    def test_save_load_round_trip(self, tmp_path: Path):
        path = tmp_path / "traj.json"
        doc = append_point(
            load_trajectory(path), "pr1", {"speedup": 2.0}, note="n"
        )
        save_trajectory(doc, path)
        assert load_trajectory(path) == doc
        # absent file loads as an empty ledger
        assert load_trajectory(tmp_path / "nope.json")["points"] == []

    def test_metric_series_filters_by_metric(self):
        doc = {"points": [
            {"label": "a", "metrics": {"x": 1.0}},
            {"label": "b", "metrics": {"y": 2.0}},
            {"label": "c", "metrics": {"x": 3.0}},
        ]}
        assert metric_series(doc, "x") == [("a", 1.0), ("c", 3.0)]

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▄▄"
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 3


# ---------------------------------------------------------------- report


def _synthetic_results():
    cell = cell_by_id("perf/trend-gate")
    doc = {
        "kind": "wearlock-trials",
        "tier": "smoke",
        "matrix_seed": MATRIX_SEED,
        "results": {
            cell.cell_id: {
                "cell_id": cell.cell_id,
                "workload": "trajectory",
                "params": {},
                "metrics": {},
                "payload": {},
            }
        },
    }
    trajectory = {
        "kind": "wearlock-trajectory",
        "points": [
            {"label": "pr1", "metrics": {
                "signal_plane_speedup": 2.4,
                "fleet_speedup_total": 3.0,
                "fleet_speedup_algorithmic": 3.2,
            }},
            {"label": "pr2", "metrics": {
                "signal_plane_speedup": 2.5,
                "fleet_speedup_total": 3.0,
                "fleet_speedup_algorithmic": 3.1,
            }},
        ],
    }
    return doc, trajectory


class TestReport:
    def test_render_is_deterministic(self):
        doc, trajectory = _synthetic_results()
        assert render_trials_report(doc, trajectory) == \
            render_trials_report(doc, trajectory)

    def test_report_carries_verdicts_and_trend(self):
        doc, trajectory = _synthetic_results()
        text = render_trials_report(doc, trajectory)
        assert "perf/trend-gate" in text
        assert "## Perf trend" in text
        assert "✅" in text and "❌" not in text

    def test_report_surfaces_failures(self):
        doc, trajectory = _synthetic_results()
        # inject a 20% slowdown into the latest point
        trajectory["points"][-1]["metrics"]["fleet_speedup_total"] = 2.4
        text = render_trials_report(doc, trajectory)
        assert "FAILURES PRESENT" in text
        assert "VIOLATED" in text

    def test_matrix_block_lists_every_cell(self):
        block = experiments_matrix_block()
        for cell in TRIAL_MATRIX:
            assert f"`{cell.cell_id}`" in block

    def test_refresh_experiments_splices_and_requires_markers(self):
        text = ("pre\n<!-- BEGIN GENERATED: trial-matrix -->\nOLDBLOCK\n"
                "<!-- END GENERATED: trial-matrix -->\npost\n")
        out = refresh_experiments(text)
        assert out.startswith("pre\n")
        assert out.endswith("post\n")
        assert "OLDBLOCK" not in out
        assert "paper/fig5-ber" in out
        with pytest.raises(WearLockError):
            refresh_experiments("no markers here")

    def test_canonical_json_is_stable(self):
        doc = {"b": 1, "a": {"z": [1, 2], "y": 0.5}}
        assert canonical_json(doc) == canonical_json(
            json.loads(canonical_json(doc))
        )


# -------------------------------------------- committed artifacts fresh


class TestCommittedArtifacts:
    """CI's gates, as unit tests against the committed files."""

    def test_committed_smoke_results_pass_their_judges(self):
        root = repo_root()
        smoke_path = root / "docs" / "trials" / "smoke.json"
        assert smoke_path.exists(), "run `python -m repro trials run`"
        doc = json.loads(smoke_path.read_text())
        trajectory = load_trajectory(root / "BENCH_trajectory.json")
        cells = [
            c for c in cells_for_tier("smoke")
            if c.cell_id in doc["results"] or c.workload == "trajectory"
        ]
        verdicts, ok = judge_document(doc, cells, trajectory)
        failed = [v for v in verdicts if not v.passed]
        assert ok, [f"{v.cell_id}/{v.judge}: {v.rationale}"
                    for v in failed]

    def test_committed_trajectory_is_a_valid_ledger(self):
        doc = load_trajectory(repo_root() / "BENCH_trajectory.json")
        assert doc["points"], "BENCH_trajectory.json must carry points"
        labels = [p["label"] for p in doc["points"]]
        assert len(labels) == len(set(labels))

    def test_committed_results_book_is_fresh(self):
        """gendocs --check for the trials-owned docs, as a unit test."""
        from repro.tools.gendocs import check_generated_docs

        assert check_generated_docs() == []
