"""Tests for the signal plane: keyed caches, shared templates, guards."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import ModemConfig
from repro.dsp.energy import SILENCE_FLOOR_SPL_DB
from repro.dsp.fftops import goertzel_power
from repro.dsp.plane import CacheStats, KeyedCache, all_cache_stats
from repro.errors import DspError
from repro.modem import (
    OfdmReceiver,
    OfdmTransmitter,
    get_constellation,
    signal_plane,
)
from repro.modem.bits import random_bits
from repro.modem.context import SignalPlane, plane_cache_stats
import repro.modem.receiver as receiver_module


class TestKeyedCache:
    def test_hit_miss_accounting(self):
        cache = KeyedCache("test.hitmiss", maxsize=8)
        builds = []
        assert cache.get("a", lambda: builds.append(1) or 1) == 1
        assert cache.get("a", lambda: builds.append(1) or 2) == 1
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1
        assert len(builds) == 1
        assert stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = KeyedCache("test.lru", maxsize=2)
        cache.get("a", lambda: "A")
        cache.get("b", lambda: "B")
        cache.get("a", lambda: "A2")  # refresh "a"
        cache.get("c", lambda: "C")  # evicts "b", the least recent
        assert len(cache) == 2
        assert cache.get("a", lambda: "A3") == "A"
        rebuilt = cache.get("b", lambda: "B2")
        assert rebuilt == "B2"

    def test_rejects_bad_maxsize(self):
        with pytest.raises(DspError):
            KeyedCache("test.bad", maxsize=0)

    def test_thread_safety_single_identity(self):
        cache = KeyedCache("test.threads", maxsize=4)
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(50):
                results.append(cache.get("k", lambda: object()))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # First insert wins: every caller saw the same object.
        assert len({id(r) for r in results}) == 1
        stats = cache.stats()
        assert stats.hits + stats.misses == len(results)

    def test_registry_lists_cache(self):
        KeyedCache("test.registry.entry", maxsize=4)
        names = set(all_cache_stats())
        assert "test.registry.entry" in names
        assert "modem.signal_plane" in names


class TestSignalPlane:
    def test_identity_shared_across_lookups(self, modem_config):
        con = get_constellation("QPSK")
        a = signal_plane(modem_config, None, con)
        b = signal_plane(modem_config, None, con)
        assert a is b

    def test_distinct_constellations_distinct_planes(self, modem_config):
        a = signal_plane(modem_config, None, get_constellation("QPSK"))
        b = signal_plane(modem_config, None, get_constellation("8PSK"))
        assert a is not b

    def test_arrays_are_readonly(self, modem_config):
        plane = signal_plane(modem_config, None, get_constellation("QPSK"))
        for arr in (plane.preamble, plane.data_bins, plane.pilot_bins,
                    plane.points):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_build_matches_legacy_values(self, modem_config, plan):
        con = get_constellation("QPSK")
        plane = SignalPlane.build(modem_config, plan, con)
        assert list(plane.data_bins) == sorted(plan.data)
        assert list(plane.pilot_bins) == list(plan.pilots)
        assert plane.quiet_nulls == plan.quiet_null_channels(min_distance=2)
        sorted_pilots = sorted(plan.pilots)
        assert plane.band_start == sorted_pilots[0]
        assert plane.band_len == sorted_pilots[-1] - sorted_pilots[0] + 1

    def test_shared_through_tx_rx(self, modem_config):
        con = get_constellation("QPSK")
        plane = signal_plane(modem_config, None, con)
        tx = OfdmTransmitter(plane=plane)
        rx = OfdmReceiver(plane=plane)
        assert tx.config is plane.config
        assert rx.plan is plane.plan
        before = plane_cache_stats()
        OfdmTransmitter(modem_config, con)
        after = plane_cache_stats()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses


class TestReceiverConstruction:
    def test_single_synchronizer_with_threshold(
        self, modem_config, monkeypatch
    ):
        """Regression: a custom detection_threshold used to construct the
        Synchronizer (and its detector stack) twice."""
        sync_calls = []
        detector_calls = []
        real_sync = receiver_module.Synchronizer
        real_detector = receiver_module.PreambleDetector

        def counting_sync(*args, **kwargs):
            sync_calls.append(1)
            return real_sync(*args, **kwargs)

        def counting_detector(*args, **kwargs):
            detector_calls.append(1)
            return real_detector(*args, **kwargs)

        monkeypatch.setattr(receiver_module, "Synchronizer", counting_sync)
        monkeypatch.setattr(
            receiver_module, "PreambleDetector", counting_detector
        )
        rx = OfdmReceiver(
            modem_config,
            get_constellation("QPSK"),
            detection_threshold=0.2,
        )
        assert len(sync_calls) == 1
        assert len(detector_calls) == 1
        assert rx._sync.detector.threshold == 0.2

    def test_default_threshold_reuses_plane_detector(self, modem_config):
        con = get_constellation("QPSK")
        plane = signal_plane(modem_config, None, con)
        rx = OfdmReceiver(plane=plane)
        assert rx._sync.detector is plane.detector


class TestNoiseFloorGuard:
    def test_no_leading_silence_gives_finite_noise_spl(self, modem_config):
        """A recording that starts right at the preamble has no ambient
        slice; the receiver must report the finite silence floor, never
        -inf (which poisoned downstream SNR arithmetic with NaNs)."""
        con = get_constellation("QPSK")
        tx = OfdmTransmitter(modem_config, con)
        bits = random_bits(240, rng=np.random.default_rng(3))
        waveform = tx.modulate(bits).waveform
        rx = OfdmReceiver(modem_config, con)
        result = rx.receive(waveform, expected_bits=240)
        assert np.isfinite(result.noise_spl)
        assert result.noise_spl == SILENCE_FLOOR_SPL_DB
        # The guard's purpose: SNR arithmetic stays NaN-free.
        assert not np.isnan(result.noise_spl - result.psnr_db)

    def test_all_zero_ambient_clamped(self, modem_config):
        """A digitally silent (all-zero) ambient slice has -inf SPL;
        the guard clamps it to the same finite floor."""
        con = get_constellation("QPSK")
        tx = OfdmTransmitter(modem_config, con)
        bits = random_bits(240, rng=np.random.default_rng(4))
        waveform = tx.modulate(bits).waveform
        recording = np.concatenate([np.zeros(4000), waveform])
        rx = OfdmReceiver(modem_config, con)
        result = rx.receive(recording, expected_bits=240)
        assert np.isfinite(result.noise_spl)
        assert result.noise_spl == SILENCE_FLOOR_SPL_DB


class TestGoertzel:
    def test_matches_fft_bin(self):
        rng = np.random.default_rng(11)
        fs = 44_100.0
        n = 512
        x = rng.standard_normal(n)
        spectrum = np.fft.fft(x)
        for k in (3, 17, 100):
            freq = k * fs / n
            expected = float(np.abs(spectrum[k]) ** 2) / (n * n)
            assert goertzel_power(x, fs, freq) == pytest.approx(
                expected, rel=1e-9
            )

    def test_pure_tone_peak(self):
        fs = 44_100.0
        n = 1024
        t = np.arange(n) / fs
        freq = 20 * fs / n
        x = np.sin(2 * np.pi * freq * t)
        on_bin = goertzel_power(x, fs, freq)
        off_bin = goertzel_power(x, fs, freq * 2.0)
        assert on_bin > 100.0 * off_bin
