"""Tests for configuration dataclasses and their validation."""

import pytest

from repro.config import (
    DEFAULT_DATA_CHANNELS,
    DEFAULT_PILOT_CHANNELS,
    ModemConfig,
    MotionFilterConfig,
    SecurityConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError


class TestModemConfig:
    def test_paper_defaults(self):
        cfg = ModemConfig()
        assert cfg.sample_rate == 44_100.0
        assert cfg.fft_size == 256
        assert cfg.cp_length == 128
        assert cfg.preamble_length == 256
        assert cfg.guard_length == 1024
        assert cfg.data_channels == DEFAULT_DATA_CHANNELS
        assert cfg.pilot_channels == DEFAULT_PILOT_CHANNELS

    def test_subchannel_bandwidth_is_about_172hz(self):
        cfg = ModemConfig()
        assert cfg.subchannel_bandwidth == pytest.approx(172.27, abs=0.1)

    def test_symbol_length_includes_cp_and_guard(self):
        cfg = ModemConfig()
        assert cfg.symbol_length == 256 + 128 + cfg.symbol_guard

    def test_bin_frequency(self):
        cfg = ModemConfig()
        assert cfg.bin_frequency(16) == pytest.approx(16 * 44100 / 256)

    def test_default_band_is_audible_1_to_6khz(self):
        cfg = ModemConfig()
        freqs = [cfg.bin_frequency(b) for b in cfg.data_channels]
        assert min(freqs) >= 1_000.0
        assert max(freqs) <= 6_000.0

    def test_near_ultrasound_shifts_into_15_20khz(self):
        cfg = ModemConfig().near_ultrasound()
        freqs = [cfg.bin_frequency(b) for b in cfg.data_channels]
        assert min(freqs) >= 15_000.0
        assert max(freqs) <= 20_000.0
        assert cfg.preamble_band == (15_000.0, 20_000.0)

    def test_near_ultrasound_preserves_plan_shape(self):
        base = ModemConfig()
        shifted = base.near_ultrasound()
        base_gaps = [
            b - a
            for a, b in zip(base.data_channels, base.data_channels[1:])
        ]
        shifted_gaps = [
            b - a
            for a, b in zip(shifted.data_channels, shifted.data_channels[1:])
        ]
        assert base_gaps == shifted_gaps

    def test_rejects_non_power_of_two_fft(self):
        with pytest.raises(ConfigurationError):
            ModemConfig(fft_size=100)

    def test_rejects_cp_longer_than_fft(self):
        with pytest.raises(ConfigurationError):
            ModemConfig(cp_length=512)

    def test_rejects_overlapping_data_and_pilots(self):
        with pytest.raises(ConfigurationError):
            ModemConfig(data_channels=(7, 16), pilot_channels=(7, 11))

    def test_rejects_out_of_range_bins(self):
        with pytest.raises(ConfigurationError):
            ModemConfig(data_channels=(0,))
        with pytest.raises(ConfigurationError):
            ModemConfig(data_channels=(128,))

    def test_rejects_empty_channels(self):
        with pytest.raises(ConfigurationError):
            ModemConfig(data_channels=())

    def test_rejects_inverted_preamble_band(self):
        with pytest.raises(ConfigurationError):
            ModemConfig(preamble_band=(6000.0, 1000.0))

    def test_rejects_preamble_band_beyond_nyquist(self):
        with pytest.raises(ConfigurationError):
            ModemConfig(preamble_band=(1000.0, 30_000.0))


class TestSecurityConfig:
    def test_paper_defaults(self):
        cfg = SecurityConfig()
        assert cfg.otp_bits == 32
        assert cfg.max_failures == 3
        assert cfg.max_ber == pytest.approx(0.1)
        assert cfg.nlos_relaxed_max_ber == pytest.approx(0.25)

    def test_rejects_bad_otp_bits(self):
        with pytest.raises(ConfigurationError):
            SecurityConfig(otp_bits=0)
        with pytest.raises(ConfigurationError):
            SecurityConfig(otp_bits=200)

    def test_rejects_bad_max_ber(self):
        with pytest.raises(ConfigurationError):
            SecurityConfig(max_ber=0.7)

    def test_rejects_zero_max_failures(self):
        with pytest.raises(ConfigurationError):
            SecurityConfig(max_failures=0)


class TestMotionFilterConfig:
    def test_thresholds_ordered(self):
        with pytest.raises(ConfigurationError):
            MotionFilterConfig(dtw_low=0.2, dtw_high=0.1)

    def test_sample_count_bounds(self):
        with pytest.raises(ConfigurationError):
            MotionFilterConfig(sample_count=5)


class TestSystemConfig:
    def test_composes_defaults(self):
        cfg = SystemConfig()
        assert cfg.modem.fft_size == 256
        assert cfg.security.max_failures == 3
        assert cfg.target_range_m == pytest.approx(1.0)

    def test_rejects_nonpositive_range(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(target_range_m=0.0)
