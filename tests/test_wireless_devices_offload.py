"""Tests for radio models, device profiles, compute model, offloading."""

import numpy as np
import pytest

from repro.devices.battery import EnergyMeter
from repro.devices.compute import (
    Workload,
    correlation_workload,
    demodulation_workload,
    dtw_workload,
    probe_processing_workload,
)
from repro.devices.profiles import DEVICES, GALAXY_NEXUS, MOTO360, NEXUS6
from repro.errors import ConfigurationError, WearLockError
from repro.faults import FaultInjector
from repro.faults.plan import FaultPlan
from repro.offload.executor import OffloadExecutor
from repro.offload.planner import OffloadPlanner, Placement
from repro.protocol.stages import MSG_RESEND_LIMIT
from repro.wireless.messages import (
    AudioFileMessage,
    ChannelConfigMessage,
    CtsMessage,
    MessageType,
    RtsMessage,
)
from repro.wireless.radio import BleLink, WifiLink, WirelessLink


def _always_drop() -> FaultInjector:
    """An injector whose every wireless verdict is a drop."""
    return FaultInjector(FaultPlan.parse("msg_drop:p=1,hits=none"), seed=0)


class _ScriptedInjector:
    """Stands in for a FaultInjector with a fixed verdict sequence."""

    def __init__(self, *verdicts):
        self._verdicts = list(verdicts)

    def wireless_verdict(self):
        if self._verdicts:
            return self._verdicts.pop(0)
        return None, 1.0


class TestRadio:
    def test_wifi_faster_than_bt_messages(self):
        bt = BleLink(seed=0)
        wifi = WifiLink(seed=0)
        bt_times = [bt.send_message().seconds for _ in range(50)]
        wifi_times = [wifi.send_message().seconds for _ in range(50)]
        assert np.median(wifi_times) < np.median(bt_times) / 2

    def test_wifi_much_faster_for_files(self):
        bt = BleLink(seed=1)
        wifi = WifiLink(seed=1)
        n = 30_000
        bt_t = np.median([bt.send_file(n).seconds for _ in range(30)])
        wifi_t = np.median([wifi.send_file(n).seconds for _ in range(30)])
        assert wifi_t < bt_t / 4

    def test_file_time_scales_with_size(self):
        bt = BleLink(seed=2)
        small = np.median([bt.send_file(1000).seconds for _ in range(30)])
        large = np.median([bt.send_file(100_000).seconds for _ in range(30)])
        assert large > 5 * small

    def test_disconnected_link_raises(self):
        bt = BleLink(connected=False)
        with pytest.raises(WearLockError):
            bt.send_message()

    def test_round_trip_is_two_messages(self):
        wifi = WifiLink(seed=3)
        rt = wifi.round_trip()
        assert rt.seconds > 0
        assert rt.n_bytes == 128

    def test_rejects_zero_byte_file(self):
        with pytest.raises(WearLockError):
            WifiLink().send_file(0)


class TestDeliverySemantics:
    """The wireless-seam fixes: drop flags, timeouts, one jitter draw."""

    def _link(self, seed=11, sigma=0.3):
        return WirelessLink(
            "test", message_latency=0.02, throughput_bps=1.0e6,
            jitter_sigma=sigma, seed=seed,
        )

    def test_dropped_file_charges_timeout_and_clears_flag(self):
        link = self._link()
        link.injector = _always_drop()
        stats = link.send_file(30_000)
        assert not stats.delivered
        assert stats.seconds == pytest.approx(
            link.message_latency * WirelessLink.DROP_TIMEOUT_FACTOR
        )

    def test_round_trip_dropped_request_skips_return_leg(self):
        link = self._link()
        link.injector = _ScriptedInjector(("drop", 1.0))
        rt = link.round_trip()
        assert not rt.delivered
        assert rt.n_bytes == 128
        # Only the request timeout is charged: no response was ever
        # sent, so no return-leg latency (and no jitter draw) follows.
        assert rt.seconds == pytest.approx(
            link.message_latency * WirelessLink.DROP_TIMEOUT_FACTOR
        )

    def test_round_trip_dropped_response_clears_delivered(self):
        link = self._link()
        link.injector = _ScriptedInjector((None, 1.0), ("drop", 1.0))
        rt = link.round_trip()
        assert not rt.delivered
        assert rt.seconds > link.message_latency * (
            WirelessLink.DROP_TIMEOUT_FACTOR - 1.0
        )

    def test_round_trip_clean_is_delivered(self):
        rt = self._link().round_trip()
        assert rt.delivered

    def test_send_file_draws_one_jitter_factor(self):
        """Regression for the double-draw bug: a file transfer applies
        a single lognormal factor to latency and payload alike, so its
        median matches the planner's deterministic estimate."""
        sigma, n = 0.3, 30_000
        link = self._link(seed=11, sigma=sigma)
        mirror = np.random.default_rng(11)
        for _ in range(5):
            jitter = float(np.exp(mirror.normal(0.0, sigma)))
            expected = (
                link.message_latency * jitter
                + 8.0 * n * jitter / link.throughput_bps
            )
            assert link.send_file(n).seconds == pytest.approx(
                expected, rel=1e-12
            )
        # Five transfers consumed exactly five draws: the streams agree
        # on the very next normal variate.
        assert link._jitter() == pytest.approx(
            float(np.exp(mirror.normal(0.0, sigma))), rel=1e-12
        )


class TestMessages:
    def test_types(self):
        assert RtsMessage().type is MessageType.RTS
        assert CtsMessage().type is MessageType.CTS
        assert ChannelConfigMessage().type is MessageType.CHANNEL_CONFIG

    def test_audio_file_size_scales(self):
        small = AudioFileMessage(n_samples=100).size_bytes()
        large = AudioFileMessage(n_samples=10_000).size_bytes()
        assert large > small

    def test_channel_config_carries_plan(self):
        msg = ChannelConfigMessage(
            mode="QPSK", data_channels=(16, 17), pilot_channels=(7, 11),
            n_bits=155,
        )
        assert msg.mode == "QPSK"
        assert msg.size_bytes() > 48


class TestDeviceProfiles:
    def test_speed_ordering(self):
        assert NEXUS6.mops > GALAXY_NEXUS.mops > MOTO360.mops

    def test_watch_is_wearable(self):
        assert MOTO360.is_wearable
        assert not NEXUS6.is_wearable

    def test_compute_seconds_inverse_speed(self):
        work = 100.0
        assert NEXUS6.compute_seconds(work) < MOTO360.compute_seconds(work)

    def test_energy_is_power_times_time(self):
        e = MOTO360.compute_energy_j(60.0)
        assert e == pytest.approx(
            MOTO360.compute_seconds(60.0) * MOTO360.active_power_w
        )

    def test_battery_fraction(self):
        frac = MOTO360.battery_fraction(MOTO360.battery_mwh * 3.6)
        assert frac == pytest.approx(1.0)

    def test_registry(self):
        assert set(DEVICES) == {"Nexus 6", "Galaxy Nexus", "Moto 360"}

    def test_rejects_negative_work(self):
        with pytest.raises(ConfigurationError):
            NEXUS6.compute_seconds(-1.0)


class TestComputeModel:
    def test_correlation_superlinear_in_length(self):
        small = correlation_workload(10_000, 256).mops
        large = correlation_workload(40_000, 256).mops
        assert large > 3.9 * small

    def test_demodulation_linear_in_symbols(self):
        one = demodulation_workload(1, 256, 12, 8).mops
        seven = demodulation_workload(7, 256, 12, 8).mops
        assert seven == pytest.approx(7 * one)

    def test_probe_processing_includes_correlation(self):
        total = probe_processing_workload(20_000, 256, 256).mops
        corr = correlation_workload(20_000, 256).mops
        assert total > corr

    def test_dtw_cost_matches_paper_scale(self):
        """Paper Table II: ~46 ms on-device at 50-150 samples."""
        ms = 1e3 * MOTO360.compute_seconds(dtw_workload(100, 100).mops)
        assert 1.0 < ms < 100.0

    def test_workload_addition(self):
        w = Workload("a", 1.0) + Workload("b", 2.0)
        assert w.mops == pytest.approx(3.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            demodulation_workload(0, 256, 12, 8)


class TestEnergyMeter:
    def test_categories_accumulate(self):
        meter = EnergyMeter(device=MOTO360)
        meter.record_compute(30.0)
        meter.record_radio(0.5)
        meter.record_audio(0.3)
        meter.record_idle(1.0)
        summary = meter.summary()
        assert set(summary) == {"compute", "radio", "audio", "idle", "total"}
        assert summary["total"] == pytest.approx(
            sum(v for k, v in summary.items() if k != "total")
        )

    def test_compute_returns_duration(self):
        meter = EnergyMeter(device=MOTO360)
        seconds = meter.record_compute(60.0)
        assert seconds == pytest.approx(1.0)

    def test_rejects_negative_time(self):
        meter = EnergyMeter(device=MOTO360)
        with pytest.raises(ConfigurationError):
            meter.record_audio(-1.0)


class TestOffload:
    def _work(self):
        return probe_processing_workload(15_000, 256, 256)

    def test_planner_prefers_offload_over_wifi(self):
        planner = OffloadPlanner(MOTO360, NEXUS6, WifiLink(seed=4))
        plan = planner.plan(self._work(), 30_000)
        assert plan.placement is Placement.PHONE_OFFLOAD

    def test_forced_local(self):
        planner = OffloadPlanner(
            MOTO360, NEXUS6, WifiLink(seed=5), prefer=Placement.WATCH_LOCAL
        )
        plan = planner.plan(self._work(), 30_000)
        assert plan.placement is Placement.WATCH_LOCAL
        assert plan.transfer_bytes == 0

    def test_offload_saves_watch_energy(self):
        """The paper's Fig. 6 claim, at the planner level."""
        link = BleLink(seed=6)
        planner_off = OffloadPlanner(
            MOTO360, NEXUS6, link, prefer=Placement.PHONE_OFFLOAD
        )
        planner_loc = OffloadPlanner(
            MOTO360, NEXUS6, link, prefer=Placement.WATCH_LOCAL
        )
        work = self._work()
        off = planner_off.plan(work, 30_000)
        loc = planner_loc.plan(work, 30_000)
        assert off.predicted_watch_energy_j < loc.predicted_watch_energy_j

    def test_planner_rejects_non_wearable_watch(self):
        with pytest.raises(ConfigurationError):
            OffloadPlanner(NEXUS6, GALAXY_NEXUS, WifiLink())

    def test_executor_local_charges_watch_only(self):
        ex = OffloadExecutor(MOTO360, NEXUS6, BleLink(seed=7))
        planner = OffloadPlanner(
            MOTO360, NEXUS6, BleLink(seed=7), prefer=Placement.WATCH_LOCAL
        )
        report = ex.execute(planner.plan(self._work(), 30_000), self._work())
        assert report.watch_energy_j > 0
        assert report.phone_energy_j == 0
        assert ex.phone_meter.total_joules == 0

    def test_executor_exhausted_resends_fall_back_to_local(self):
        """A clip the phone never receives is processed on the watch."""
        link = BleLink(seed=9)
        link.injector = _always_drop()
        ex = OffloadExecutor(MOTO360, NEXUS6, link)
        planner = OffloadPlanner(
            MOTO360, NEXUS6, BleLink(seed=9),
            prefer=Placement.PHONE_OFFLOAD,
        )
        work = self._work()
        report = ex.execute(planner.plan(work, 30_000), work)
        assert report.placement is Placement.WATCH_LOCAL
        # Every attempt (first send + MSG_RESEND_LIMIT resends) charged
        # the acknowledgement timeout to the watch radio.
        timeout = link.message_latency * link.DROP_TIMEOUT_FACTOR
        assert report.transfer_s == pytest.approx(
            (MSG_RESEND_LIMIT + 1) * timeout
        )
        assert report.compute_s > 0
        assert report.phone_energy_j == 0
        assert ex.phone_meter.total_joules == 0
        assert ex.watch_meter.joules_by_category["radio"] > 0
        assert ex.watch_meter.joules_by_category["compute"] > 0

    def test_executor_resend_recovers_offload(self):
        """One drop followed by a clean resend still lands on the phone,
        with the timeout kept in the transfer bill."""
        link = WifiLink(seed=10)
        link.injector = _ScriptedInjector(("drop", 1.0))
        ex = OffloadExecutor(MOTO360, NEXUS6, link)
        planner = OffloadPlanner(
            MOTO360, NEXUS6, WifiLink(seed=10),
            prefer=Placement.PHONE_OFFLOAD,
        )
        work = self._work()
        report = ex.execute(planner.plan(work, 30_000), work)
        assert report.placement is Placement.PHONE_OFFLOAD
        assert report.phone_energy_j > 0
        timeout = link.message_latency * link.DROP_TIMEOUT_FACTOR
        assert report.transfer_s > timeout

    def test_executor_offload_charges_both(self):
        ex = OffloadExecutor(MOTO360, NEXUS6, WifiLink(seed=8))
        planner = OffloadPlanner(
            MOTO360, NEXUS6, WifiLink(seed=8),
            prefer=Placement.PHONE_OFFLOAD,
        )
        report = ex.execute(planner.plan(self._work(), 30_000), self._work())
        assert report.transfer_s > 0
        assert report.phone_energy_j > 0
        assert ex.watch_meter.joules_by_category["radio"] > 0
