"""Bit-identity of the wave-batched Phase-2 OTP transmit/receive.

The fleet's ``staging="otp"`` fast path pauses every session just
before ``otp-tx``, replays each paused session's stage rng stream out
of band, and runs the wave's frame assembly, channel synthesis and
receive DSP as stacked batches (:func:`repro.fleet.executor.
precompute_otp`).  These tests pin the contract at every layer,
mirroring ``tests/test_probe_staging_equivalence.py``:

* each batch primitive equals its scalar counterpart bit-for-bit,
  including the generator stream positions it leaves behind;
* a staged ``begin``/``feed``/``finish`` session equals a live
  ``run()`` field-for-field, including the ``otp-tx`` stream position;
* whole shards and scheduled fleets produce byte-identical aggregates
  at every staging level and worker count;
* the order-preserving-partition and monotone-degradation invariants
  the wave driver leans on hold for arbitrary inputs (hypothesis).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.multipath import (
    RoomImpulseResponse,
    convolve_rows_pairwise,
)
from repro.channel.noise import NoiseScene, tone_jammer
from repro.channel.hardware import SpeakerModel
from repro.config import ModemConfig
from repro.errors import ModemError
from repro.fleet import FleetConfig, FleetScheduler, run_shard
from repro.fleet.executor import (
    STAGING_LEVELS,
    effective_staging,
    partition_indices,
    precompute_otp,
)
from repro.modem.constellation import QPSK
from repro.modem.frame import frame_layout
from repro.modem.receiver import OfdmReceiver, receive_batch_grouped
from repro.modem.subchannels import ChannelPlan
from repro.modem.synchronizer import (
    Synchronizer,
    fine_sync_offsets_batch,
    fine_sync_offsets_rows,
)
from repro.modem.transmitter import OfdmTransmitter
from repro.protocol.session import SessionConfig, UnlockSession

BANDS = ((0.0, 1200.0, 1.0), (2000.0, 5000.0, 0.6))
FS = 44_100.0


def _frame_recordings(config, n_rows, seed, drop_row=None, cut_row=None):
    """Equal-length recordings embedding one QPSK frame each."""
    tx = OfdmTransmitter(config, QPSK)
    rng = np.random.default_rng(seed)
    recs = []
    n_bits = 2 * len(tx.plan.data)
    for i in range(n_rows):
        frame = tx.modulate(rng.integers(0, 2, n_bits)).waveform
        lead = np.zeros(300 + 40 * i)
        rec = np.concatenate([lead, 0.4 * frame, np.zeros(900 - 40 * i)])
        rec += 1e-4 * rng.standard_normal(rec.size)
        if drop_row is not None and i == drop_row:
            rec = 1e-4 * rng.standard_normal(rec.size)  # no frame at all
        if cut_row is not None and i == cut_row:
            # Frame present but truncated: coarse sync locks, the body
            # extraction then runs past the recording end.
            rec = np.concatenate(
                [lead, 0.4 * frame, np.zeros(900 - 40 * i)]
            )[: lead.size + frame.size // 2]
            rec = np.pad(rec, (0, recs[0].size - rec.size))
        recs.append(rec)
    return recs, n_bits


class TestBatchPrimitives:
    """Each stacked transform equals its scalar counterpart bit-for-bit."""

    def test_modulate_batch_matches_scalar(self):
        tx = OfdmTransmitter(ModemConfig(), QPSK)
        rng = np.random.default_rng(0)
        rows = [rng.integers(0, 2, 96) for _ in range(5)]
        batch = tx.modulate_batch(rows)
        for bits, got in zip(rows, batch):
            want = tx.modulate(bits)
            assert np.array_equal(got.waveform, want.waveform)
            assert np.array_equal(got.padded_bits, want.padded_bits)
            assert got.n_payload_bits == want.n_payload_bits
            assert got.layout == want.layout

    def test_modulate_batch_rejects_ragged_payloads(self):
        tx = OfdmTransmitter(ModemConfig(), QPSK)
        with pytest.raises(ModemError):
            tx.modulate_batch([np.ones(8, np.uint8), np.ones(9, np.uint8)])

    def test_play_batch_matches_scalar(self):
        speaker = SpeakerModel()
        rng = np.random.default_rng(1)
        signals = 0.2 * rng.standard_normal((4, 3000))
        batch = speaker.play_batch(signals)
        for i in range(signals.shape[0]):
            assert np.array_equal(batch[i], speaker.play(signals[i]))

    def test_convolve_rows_pairwise_matches_apply(self):
        room = RoomImpulseResponse()
        rng = np.random.default_rng(2)
        signals = rng.standard_normal((4, 4000))
        irs = np.stack(
            [room.sample(np.random.default_rng(s)) for s in range(4)]
        )
        batch = convolve_rows_pairwise(signals, irs)
        for s in range(4):
            scalar = room.apply(signals[s], rng=np.random.default_rng(s))
            assert np.array_equal(batch[s], scalar)

    def test_jammed_scene_batch_matches_scalar_and_stream(self):
        scene = NoiseScene(
            spl_db=60.0, bands=BANDS,
            jam_tones_hz=(2500.0, 4100.0), jam_spl_db=55.0,
        )
        gens = [np.random.default_rng(s) for s in (5, 6, 7)]
        batch = scene.sample_batch(4000, gens)
        for i, seed in enumerate((5, 6, 7)):
            mirror = np.random.default_rng(seed)
            assert np.array_equal(batch[i], scene.sample(4000, rng=mirror))
            assert gens[i].bit_generator.state == mirror.bit_generator.state

    def test_jammed_scene_draws_only_mode_advances_streams(self):
        """``values=False`` must draw the jam phases too — the staged
        caller hands the generators back to live code afterwards."""
        scene = NoiseScene(
            spl_db=60.0, bands=BANDS, jam_tones_hz=(3000.0,),
            jam_spl_db=50.0,
        )
        gens = [np.random.default_rng(s) for s in (8, 9)]
        out = scene.sample_batch(2048, gens, values=False)
        assert not out.any()
        for seed, gen in zip((8, 9), gens):
            mirror = np.random.default_rng(seed)
            scene.sample(2048, rng=mirror)
            assert gen.bit_generator.state == mirror.bit_generator.state

    def test_jammer_rejects_more_than_six_tones(self):
        scene = NoiseScene(
            spl_db=60.0, bands=BANDS,
            jam_tones_hz=tuple(500.0 * k for k in range(1, 8)),
            jam_spl_db=50.0,
        )
        from repro.errors import ChannelError

        with pytest.raises(ChannelError):
            scene.sample_batch(256, [np.random.default_rng(0)])
        with pytest.raises(ChannelError):
            tone_jammer(
                256, FS, tuple(500.0 * k for k in range(1, 8)), 50.0
            )

    def test_fine_sync_rows_matches_per_frame(self):
        config = ModemConfig()
        rng = np.random.default_rng(3)
        xs = rng.standard_normal((6, 6000))
        # Interior anchors, plus one row with a boundary-clipped anchor
        # (exercises the per-frame delegation path).
        anchors = rng.integers(100, 5000, size=(6, 4))
        anchors[5, 0] = 2
        rows = fine_sync_offsets_rows(xs, anchors, config, search_range=24)
        for r in range(6):
            want = fine_sync_offsets_batch(
                xs[r], anchors[r], config, search_range=24
            )
            assert np.array_equal(rows[r], want), r

    def test_extract_bodies_rows_matches_scalar(self):
        config = ModemConfig()
        recs, _ = _frame_recordings(config, 4, seed=4, drop_row=2)
        sync = Synchronizer(config)
        layout = frame_layout(config, 2)
        matches = [sync.locate(rec) for rec in recs]
        # A row whose coarse sync failed arrives as None; the batch
        # extractor must pass it through untouched.
        matches[2] = None
        results = sync.extract_bodies_rows(np.stack(recs), matches, layout)
        for rec, match, res in zip(recs, matches, results):
            if match is None:
                assert res is None
                continue
            try:
                want_bodies, want_offsets = sync.extract_bodies(
                    rec, match, layout
                )
            except Exception as exc:  # noqa: BLE001 — mirrored verbatim
                assert type(res) is type(exc)
                continue
            bodies, offsets = res
            assert np.array_equal(bodies, want_bodies)
            assert offsets == want_offsets

    def test_receive_batch_matches_scalar(self):
        config = ModemConfig()
        recs, n_bits = _frame_recordings(
            config, 5, seed=5, drop_row=1, cut_row=3
        )
        rx = OfdmReceiver(config, QPSK)
        batch = rx.receive_batch(np.stack(recs), expected_bits=n_bits)
        decoded = 0
        for rec, got in zip(recs, batch):
            try:
                want = rx.receive(rec, n_bits)
            except ModemError:
                assert got is None
                continue
            decoded += 1
            assert got is not None
            assert np.array_equal(got.bits, want.bits)
            assert got.preamble_score == want.preamble_score
            assert got.psnr_db == want.psnr_db
            assert got.ebn0_db == want.ebn0_db
            assert got.fine_offsets == want.fine_offsets
            assert got.noise_spl == want.noise_spl
            assert np.array_equal(got.delay_profile, want.delay_profile)
            assert np.array_equal(
                got.equalized_symbols, want.equalized_symbols
            )
        assert decoded >= 3  # frames actually demodulated, not all-None

    def test_receive_batch_grouped_mixes_plans(self):
        # Two plans with the same geometry (12 data bins, one pilot
        # comb) but different bin assignments: the wave driver's common
        # case, where every session probes its own sub-channels.  The
        # grouped path must still equal the matching scalar receive.
        config = ModemConfig()
        plan_a = ChannelPlan.from_config(config)
        plan_b = ChannelPlan(
            fft_size=config.fft_size,
            data=(8, 9, 10, 12, 13, 14, 16, 17, 18, 20, 21, 22),
            pilots=plan_a.pilots,
        )
        rng = np.random.default_rng(13)
        rows = []
        n_bits = 2 * len(plan_a.data)
        for i, plan in enumerate([plan_a, plan_b, plan_a, plan_b, plan_a]):
            tx = OfdmTransmitter(config, QPSK, plan=plan)
            frame = tx.modulate(rng.integers(0, 2, n_bits)).waveform
            rec = np.concatenate(
                [np.zeros(300 + 40 * i), 0.4 * frame, np.zeros(900 - 40 * i)]
            )
            rec += 1e-4 * rng.standard_normal(rec.size)
            if i == 2:
                rec = 1e-4 * rng.standard_normal(rec.size)  # no frame
            rows.append((plan, rec))
        receivers = [
            OfdmReceiver(config, QPSK, plan=plan) for plan, _ in rows
        ]
        grouped = receive_batch_grouped(
            receivers, [rec for _, rec in rows], expected_bits=n_bits
        )
        decoded = 0
        for rx, (_, rec), got in zip(receivers, rows, grouped):
            try:
                want = rx.receive(rec, n_bits)
            except ModemError:
                assert got is None
                continue
            decoded += 1
            assert got is not None
            assert np.array_equal(got.bits, want.bits)
            assert got.preamble_score == want.preamble_score
            assert got.psnr_db == want.psnr_db
            assert got.ebn0_db == want.ebn0_db
            assert got.fine_offsets == want.fine_offsets
            assert got.noise_spl == want.noise_spl
            assert np.array_equal(
                got.equalized_symbols, want.equalized_symbols
            )
        assert decoded >= 3

    def test_receive_batch_grouped_rejects_mixed_geometry(self):
        config = ModemConfig()
        recs, n_bits = _frame_recordings(config, 2, seed=6)
        mismatched = [
            OfdmReceiver(config, QPSK),
            OfdmReceiver(config, QPSK, detection_threshold=0.9),
        ]
        with pytest.raises(ModemError):
            receive_batch_grouped(mismatched, recs, expected_bits=n_bits)


class TestStagedSessionEquivalence:
    """begin → precompute_otp → feed/finish equals a live run()."""

    @staticmethod
    def _fingerprint(outcome):
        return (
            outcome.unlocked,
            outcome.abort_reason,
            outcome.mode,
            outcome.raw_ber,
            outcome.total_delay_s,
            outcome.attempts,
            outcome.reprobes,
            outcome.watch_energy_j,
            outcome.phone_energy_j,
            tuple(
                (r.name, r.score, r.passed, r.skipped)
                for r in outcome.verifier_results
            ),
        )

    def _run_staged(self, seed):
        session = UnlockSession(SessionConfig(seed=seed))
        pending = session.begin()
        waves = 0
        while pending.paused:
            staged = precompute_otp([pending])[0]
            waves += 1
            if not pending.feed(staged):
                break
        return pending, waves

    @pytest.mark.parametrize("seed", [7, 11, 23])
    def test_staged_session_matches_live(self, seed):
        live_pending = UnlockSession(SessionConfig(seed=seed)).begin(
            pause_before=None
        )
        live = live_pending.finish()
        staged_pending, _ = self._run_staged(seed)
        staged = staged_pending.finish()
        assert self._fingerprint(staged) == self._fingerprint(live)
        if live.mode is not None:
            # Phase 2 ran in both: the staged otp-tx stream must end at
            # exactly the live generator position (a downgrade
            # retransmission would continue from it).
            assert (
                staged_pending.ctx.rng_for("otp-tx").bit_generator.state
                == live_pending.ctx.rng_for("otp-tx").bit_generator.state
            )

    def test_some_seed_reaches_phase_two(self):
        reached = []
        for seed in (7, 11, 23):
            pending = UnlockSession(SessionConfig(seed=seed)).begin(
                pause_before=None
            )
            reached.append(pending.finish().mode is not None)
        assert any(reached), "no chosen seed exercises the OTP stage"


class TestStagedOtpFleet:
    """Whole-shard and scheduled-fleet identity at ``staging='otp'``."""

    def test_records_identical_across_all_staging_levels(self):
        cfg = FleetConfig(n_users=5, hours=24.0, seed=9)
        per_level = {
            level: run_shard(cfg, 0, 5, staging=level)
            for level in STAGING_LEVELS
        }
        assert (
            per_level["none"] == per_level["dtw"]
            == per_level["probe"] == per_level["otp"]
        )

    def test_shard_split_invariance(self):
        """The wave batching must not couple sessions across shard
        boundaries: users [0,6) in one shard equal [0,3)+[3,6)."""
        cfg = FleetConfig(n_users=6, hours=24.0, seed=3)
        whole = run_shard(cfg, 0, 6, staging="otp")
        halves = run_shard(cfg, 0, 3, staging="otp") + run_shard(
            cfg, 3, 6, staging="otp"
        )
        assert whole == halves

    def test_faulted_shard_degrades_but_stays_identical(self):
        cfg = FleetConfig(
            n_users=4, hours=24.0, seed=9, faults="msg_drop@otp-tx:p=0.5"
        )
        live = run_shard(cfg, 0, 4, staging="none")
        staged = run_shard(cfg, 0, 4, staging="otp")
        assert live == staged

    def test_scheduler_staging_and_worker_invariance(self):
        cfg = FleetConfig(n_users=8, hours=24.0, seed=4)

        def doc(result):
            return json.dumps(
                result.aggregate.to_dict(hours=cfg.hours),
                sort_keys=True, indent=2,
            )

        base = doc(FleetScheduler(cfg, workers=1, staging="none").run())
        staged = doc(FleetScheduler(cfg, workers=1, staging="otp").run())
        pooled = doc(
            FleetScheduler(
                cfg, workers=4, shard_users=2, staging="otp"
            ).run()
        )
        assert base == staged == pooled


class TestWaveInvariants:
    """Hypothesis: the invariants the wave driver is built on."""

    @given(st.lists(st.integers(0, 5), max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_partition_indices_is_order_preserving_partition(self, keys):
        groups = partition_indices(keys)
        # Keys appear in first-seen order.
        seen = []
        for k in keys:
            if k not in seen:
                seen.append(k)
        assert list(groups) == seen
        # Each position list is strictly ascending and holds exactly
        # the positions of its key; together they partition range(n).
        everything = []
        for key, positions in groups.items():
            assert positions == sorted(positions)
            assert all(keys[p] == key for p in positions)
            everything.extend(positions)
        assert sorted(everything) == list(range(len(keys)))

    @given(st.lists(st.integers(0, 3), max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_splice_back_reproduces_session_order(self, keys):
        """Scattering per-group results through the position lists
        reconstructs the original order — the staged passes' core
        assumption."""
        out = [None] * len(keys)
        for key, positions in partition_indices(keys).items():
            group_result = [(key, p) for p in positions]  # batched work
            for value, p in zip(group_result, positions):
                out[p] = value
        assert out == [(k, i) for i, k in enumerate(keys)]

    @given(
        st.sampled_from(STAGING_LEVELS),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_effective_staging_monotone_degradation(
        self, level, faulted, refaulted
    ):
        rank = {name: i for i, name in enumerate(STAGING_LEVELS)}
        effective = effective_staging(level, faulted)
        # Never stages more than requested; fault-free is untouched;
        # faulted runs never keep an acoustic level.
        assert rank[effective] <= rank[level]
        if not faulted:
            assert effective == level
        else:
            assert effective in ("none", "dtw")
        # Degrading twice (any fault state) is idempotent: the ladder
        # only ever steps down, so re-checking cannot re-raise it.
        again = effective_staging(effective, refaulted)
        assert rank[again] <= rank[effective]
        assert effective_staging(again, refaulted) == again
