"""Tests for the composed acoustic link and named environments."""

import numpy as np
import pytest

from repro.channel.link import AcousticLink, LinkBudget
from repro.channel.scenarios import ENVIRONMENTS, get_environment
from repro.dsp.energy import signal_spl
from repro.errors import ChannelError


class TestLinkBudget:
    def test_snr_is_rx_minus_noise(self):
        b = LinkBudget(tx_spl=80.0, rx_spl=55.0, noise_spl=45.0, distance_m=1.0)
        assert b.snr_db == pytest.approx(10.0)


class TestAcousticLink:
    def _tone(self, seconds=0.2, freq=3000.0, fs=44100.0):
        t = np.arange(int(seconds * fs)) / fs
        return np.sin(2 * np.pi * freq * t)

    def test_transmit_returns_recording_and_budget(self, quiet_link):
        rec, budget = quiet_link.transmit(
            self._tone(), tx_spl=70.0, rng=np.random.default_rng(0)
        )
        assert rec.size > 0
        assert budget.tx_spl == 70.0
        assert budget.rx_spl < 70.0

    def test_distance_reduces_received_level(self):
        env = get_environment("quiet_room")
        tone = self._tone()
        levels = []
        for d in (0.25, 1.0, 4.0):
            link = AcousticLink(
                room=env.room, noise=env.noise, distance_m=d,
                leading_silence=0.0, trailing_silence=0.0,
            )
            rec, _ = link.transmit(
                tone, tx_spl=80.0, rng=np.random.default_rng(1)
            )
            levels.append(signal_spl(rec))
        assert levels[0] > levels[1] > levels[2]
        # ~12 dB from 0.25 m to 1 m (two doublings).
        assert levels[0] - levels[1] == pytest.approx(12.0, abs=3.0)

    def test_leading_silence_present(self):
        env = get_environment("quiet_room")
        link = AcousticLink(
            room=env.room, noise=None, distance_m=0.3,
            leading_silence=0.1, trailing_silence=0.0,
        )
        rec, _ = link.transmit(
            self._tone(), tx_spl=70.0, rng=np.random.default_rng(2)
        )
        lead = rec[: int(0.08 * 44100)]
        body = rec[int(0.12 * 44100): int(0.2 * 44100)]
        assert signal_spl(lead) < signal_spl(body) - 20.0

    def test_nlos_attenuates(self):
        env = get_environment("quiet_room")
        kwargs = dict(
            room=env.room, noise=None, distance_m=0.5,
            leading_silence=0.0, trailing_silence=0.0,
        )
        los_rec, _ = AcousticLink(los=True, **kwargs).transmit(
            self._tone(), 70.0, rng=np.random.default_rng(3)
        )
        nlos_rec, _ = AcousticLink(los=False, **kwargs).transmit(
            self._tone(), 70.0, rng=np.random.default_rng(3)
        )
        assert signal_spl(nlos_rec) < signal_spl(los_rec) - 4.0

    def test_noise_floor_dominates_far_away(self):
        env = get_environment("office")
        link = AcousticLink(
            room=env.room, noise=env.noise, distance_m=8.0, seed=4
        )
        rec, budget = link.transmit(
            self._tone(), tx_spl=60.0, rng=np.random.default_rng(4)
        )
        # Received signal is way below the ambient noise.
        assert budget.snr_db < 0.0
        assert signal_spl(rec) == pytest.approx(
            env.noise.effective_spl(), abs=4.0
        )

    def test_record_ambient_matches_scene_level(self):
        env = get_environment("cafe")
        link = AcousticLink(room=env.room, noise=env.noise, seed=5)
        ambient = link.record_ambient(0.3, rng=np.random.default_rng(5))
        assert signal_spl(ambient) == pytest.approx(
            env.noise.effective_spl(), abs=4.0
        )

    def test_rejects_zero_energy_waveform(self, quiet_link):
        with pytest.raises(ChannelError):
            quiet_link.transmit(np.zeros(100), tx_spl=70.0)

    def test_rejects_bad_distance(self):
        with pytest.raises(ChannelError):
            AcousticLink(distance_m=0.0)


class TestScenarios:
    def test_all_paper_locations_present(self):
        for name in (
            "quiet_room", "office", "classroom", "cafe", "grocery_store"
        ):
            assert name in ENVIRONMENTS

    def test_noise_levels_ordered_by_loudness(self):
        spls = {
            name: env.noise.effective_spl()
            for name, env in ENVIRONMENTS.items()
        }
        assert spls["quiet_room"] < spls["office"] < spls["classroom"]
        assert spls["classroom"] < spls["cafe"] <= spls["grocery_store"]

    def test_quiet_room_matches_paper_15_20_db(self):
        spl = ENVIRONMENTS["quiet_room"].noise.effective_spl()
        assert 14.0 <= spl <= 21.0

    def test_unknown_environment_raises(self):
        with pytest.raises(ChannelError):
            get_environment("moon_base")
