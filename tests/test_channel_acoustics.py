"""Tests for spreading loss, SPL arithmetic and volume control."""

import numpy as np
import pytest

from repro.channel.acoustics import (
    D0_METERS,
    VolumeControl,
    received_spl,
    required_tx_spl,
    spreading_loss_db,
)
from repro.errors import ChannelError


class TestSpreadingLoss:
    def test_no_loss_at_reference_distance(self):
        assert spreading_loss_db(D0_METERS) == 0.0

    def test_six_db_per_doubling(self):
        l1 = spreading_loss_db(1.0)
        l2 = spreading_loss_db(2.0)
        assert l2 - l1 == pytest.approx(6.0206, abs=1e-3)

    def test_monotone_in_distance(self):
        distances = [0.1, 0.5, 1.0, 2.0, 5.0]
        losses = [spreading_loss_db(d) for d in distances]
        assert losses == sorted(losses)

    def test_geometry_constant_scales_loss(self):
        assert spreading_loss_db(1.0, geometry=2.0) == pytest.approx(
            2.0 * spreading_loss_db(1.0)
        )

    def test_inside_reference_clamped_to_zero(self):
        assert spreading_loss_db(D0_METERS / 2) == 0.0

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ChannelError):
            spreading_loss_db(0.0)


class TestReceivedSpl:
    def test_subtracts_loss(self):
        assert received_spl(80.0, 1.0) == pytest.approx(
            80.0 - spreading_loss_db(1.0)
        )

    def test_paper_fig4_regime(self):
        # At ~80 dB tx, receiver SPL at 0.25-4 m spans roughly 40-70 dB.
        spls = [received_spl(80.0, d) for d in (0.25, 1.0, 4.0)]
        assert 60.0 < spls[0] < 70.0
        assert 50.0 < spls[1] < 60.0
        assert 38.0 < spls[2] < 48.0


class TestRequiredTxSpl:
    def test_guarantees_snr_at_range(self):
        tx = required_tx_spl(noise_spl=45.0, min_snr_db=10.0, range_m=1.0)
        assert received_spl(tx, 1.0) - 45.0 == pytest.approx(10.0)

    def test_louder_noise_needs_louder_tx(self):
        quiet = required_tx_spl(20.0, 10.0)
        loud = required_tx_spl(60.0, 10.0)
        assert loud - quiet == pytest.approx(40.0)

    def test_rejects_negative_snr(self):
        with pytest.raises(ChannelError):
            required_tx_spl(40.0, -1.0)


class TestVolumeControl:
    def test_steps_monotone(self):
        vc = VolumeControl()
        spls = [vc.spl_for_step(s) for s in range(vc.steps)]
        assert spls == sorted(spls)
        assert spls[0] == vc.min_spl
        assert spls[-1] == vc.max_spl

    def test_step_for_spl_meets_target(self):
        vc = VolumeControl()
        step = vc.step_for_spl(70.0)
        assert vc.spl_for_step(step) >= 70.0
        if step > 0:
            assert vc.spl_for_step(step - 1) < 70.0

    def test_unreachable_target_returns_loudest(self):
        vc = VolumeControl()
        assert vc.step_for_spl(150.0) == vc.steps - 1

    def test_rejects_bad_step(self):
        vc = VolumeControl()
        with pytest.raises(ChannelError):
            vc.spl_for_step(-1)
        with pytest.raises(ChannelError):
            vc.spl_for_step(vc.steps)

    def test_rejects_degenerate_config(self):
        with pytest.raises(ChannelError):
            VolumeControl(min_spl=80.0, max_spl=60.0)
        with pytest.raises(ChannelError):
            VolumeControl(steps=1)
