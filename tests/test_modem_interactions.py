"""Cross-feature modem tests: re-planned frames, bands, boundaries."""

import numpy as np
import pytest

from repro.channel.link import AcousticLink
from repro.channel.hardware import MicrophoneModel
from repro.channel.scenarios import get_environment
from repro.config import ModemConfig
from repro.modem.bits import bit_error_rate, random_bits
from repro.modem.constellation import QPSK, get_constellation
from repro.modem.probe import ChannelProber
from repro.modem.receiver import OfdmReceiver
from repro.modem.subchannels import ChannelPlan
from repro.modem.transmitter import OfdmTransmitter


class TestReplannedFrames:
    """Transmitter and receiver must agree on any re-planned layout."""

    def _roundtrip_with_plan(self, plan, n_bits=96):
        config = ModemConfig()
        tx = OfdmTransmitter(config, QPSK, plan=plan)
        rx = OfdmReceiver(config, QPSK, plan=plan)
        bits = random_bits(n_bits, rng=3)
        out = rx.receive(tx.modulate(bits).waveform, expected_bits=n_bits)
        return bit_error_rate(bits, out.bits)

    def test_shifted_data_bins_loopback(self):
        plan = ChannelPlan(
            fft_size=256,
            data=(8, 9, 10, 12, 13, 14, 16, 17, 18, 20, 21, 22),
            pilots=(7, 11, 15, 19, 23, 27, 31, 35),
        )
        assert self._roundtrip_with_plan(plan) == 0.0

    def test_fewer_data_bins_loopback(self):
        plan = ChannelPlan(
            fft_size=256,
            data=(16, 20, 24, 28),
            pilots=(7, 11, 15, 19, 23, 27, 31, 35),
        )
        assert self._roundtrip_with_plan(plan, n_bits=40) == 0.0

    def test_probe_recommendation_is_transmittable(self):
        """Whatever plan the prober recommends must round-trip."""
        config = ModemConfig()
        env = get_environment("grocery_store")
        prober = ChannelProber(config)
        link = AcousticLink(
            room=env.room, noise=env.noise, distance_m=0.2,
            leading_silence=0.15, seed=4,
        )
        rec, _ = link.transmit(
            prober.build_probe(), tx_spl=85.0,
            rng=np.random.default_rng(4),
        )
        report = prober.analyze(rec)
        assert report.recommended_plan is not None
        assert self._roundtrip_with_plan(report.recommended_plan) == 0.0


class TestBandIsolation:
    def test_watch_mic_cannot_hear_ultrasound_frames(self):
        """The Moto 360 low-pass kills a near-ultrasound frame — the
        reason the phone-watch pair must use the audible band."""
        config = ModemConfig().near_ultrasound()
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(48, rng=5)
        env = get_environment("quiet_room")
        watch_mic_link = AcousticLink(
            microphone=MicrophoneModel(),  # 7 kHz low-pass
            room=env.room, noise=env.noise, distance_m=0.3, seed=5,
        )
        rec, _ = watch_mic_link.transmit(
            tx.modulate(bits).waveform, tx_spl=75.0,
            rng=np.random.default_rng(5),
        )
        try:
            out = rx.receive(rec, expected_bits=48)
            ber = bit_error_rate(bits, out.bits)
        except Exception:
            ber = 1.0
        assert ber > 0.2

    def test_audible_frame_unaffected_by_wide_band_mic(self):
        config = ModemConfig()
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(48, rng=6)
        env = get_environment("quiet_room")
        link = AcousticLink(
            microphone=MicrophoneModel.wide_band(config.sample_rate),
            room=env.room, noise=env.noise, distance_m=0.3, seed=6,
        )
        rec, _ = link.transmit(
            tx.modulate(bits).waveform, tx_spl=72.0,
            rng=np.random.default_rng(6),
        )
        out = rx.receive(rec, expected_bits=48)
        assert bit_error_rate(bits, out.bits) <= 0.03


class TestReceiverDiagnostics:
    def test_fine_offsets_reported_per_symbol(self):
        config = ModemConfig()
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(72, rng=7)
        out = rx.receive(tx.modulate(bits).waveform, expected_bits=72)
        assert len(out.fine_offsets) == 3
        assert all(abs(o) <= 24 for o in out.fine_offsets)

    def test_equalized_symbols_cluster_on_constellation(self):
        config = ModemConfig()
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(48, rng=8)
        out = rx.receive(tx.modulate(bits).waveform, expected_bits=48)
        points = np.asarray(QPSK.points)
        for s in out.equalized_symbols:
            assert np.min(np.abs(s - points)) < 0.1

    def test_noise_spl_estimated_from_lead_in(self, rng):
        config = ModemConfig()
        env = get_environment("cafe")
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(48, rng=9)
        link = AcousticLink(
            room=env.room, noise=env.noise, distance_m=0.3,
            leading_silence=0.15, seed=9,
        )
        rec, _ = link.transmit(tx.modulate(bits).waveform, 85.0, rng=rng)
        out = rx.receive(rec, expected_bits=48)
        assert out.noise_spl == pytest.approx(
            env.noise.effective_spl(), abs=5.0
        )


class TestModeBoundaries:
    def test_every_deployed_mode_survives_its_design_point(self):
        """At the Eb/N0 the model requires for MaxBER=0.1, the real
        link's BER stays within ~2x of that constraint."""
        from repro.modem.adaptive import AdaptiveModulator
        from repro.channel.noise import NoiseScene

        modulator = AdaptiveModulator()
        config = ModemConfig()
        env = get_environment("quiet_room")
        for mode in ("QPSK", "QASK"):
            required = modulator.model.min_ebn0_db(mode, 0.1)
            constellation = get_constellation(mode)
            # Find a noise level landing near the required Eb/N0.
            bers = []
            for noise_spl in (40.0, 46.0, 52.0, 58.0):
                tx = OfdmTransmitter(config, constellation)
                rx = OfdmReceiver(config, constellation)
                bits = random_bits(240, rng=10)
                link = AcousticLink(
                    room=env.room,
                    noise=NoiseScene(spl_db=noise_spl),
                    distance_m=0.5,
                    seed=10,
                )
                rec, _ = link.transmit(
                    tx.modulate(bits).waveform, tx_spl=78.0,
                    rng=np.random.default_rng(10),
                )
                try:
                    out = rx.receive(rec, expected_bits=240)
                except Exception:
                    continue
                if abs(out.ebn0_db - required) < 4.0:
                    bers.append(bit_error_rate(bits, out.bits))
            if bers:
                assert min(bers) < 0.2, mode
