"""Tests for normalized cross-correlation primitives."""

import numpy as np
import pytest

from repro.dsp.correlation import (
    best_alignment,
    normalized_cross_correlation,
    sliding_normalized_correlation,
)
from repro.errors import DspError


class TestNormalizedCrossCorrelation:
    def test_identical_signals_score_one(self):
        x = np.sin(np.linspace(0, 20, 100))
        assert normalized_cross_correlation(x, x) == pytest.approx(1.0)

    def test_negated_signals_score_minus_one(self):
        x = np.sin(np.linspace(0, 20, 100))
        assert normalized_cross_correlation(x, -x) == pytest.approx(-1.0)

    def test_scale_invariance(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(64)
        y = rng.standard_normal(64)
        a = normalized_cross_correlation(x, y)
        b = normalized_cross_correlation(5 * x, 0.1 * y)
        assert a == pytest.approx(b)

    def test_zero_energy_returns_zero(self):
        assert normalized_cross_correlation(np.zeros(10), np.ones(10)) == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DspError):
            normalized_cross_correlation(np.ones(5), np.ones(6))


class TestSlidingCorrelation:
    def test_finds_embedded_template(self):
        rng = np.random.default_rng(1)
        template = rng.standard_normal(128)
        signal = np.concatenate(
            [np.zeros(500), template, np.zeros(300)]
        ) + 0.01 * rng.standard_normal(928)
        lag, score = best_alignment(signal, template)
        assert lag == 500
        assert score > 0.95

    def test_output_length(self):
        s = np.zeros(100)
        s[10] = 1.0
        t = np.ones(20)
        out = sliding_normalized_correlation(s, t)
        assert out.size == 100 - 20 + 1

    def test_scores_bounded(self):
        rng = np.random.default_rng(2)
        s = rng.standard_normal(512)
        t = rng.standard_normal(64)
        out = sliding_normalized_correlation(s, t)
        assert np.all(out <= 1.0) and np.all(out >= -1.0)

    def test_matches_naive_implementation(self):
        rng = np.random.default_rng(3)
        s = rng.standard_normal(200)
        t = rng.standard_normal(32)
        fast = sliding_normalized_correlation(s, t)
        te = np.dot(t, t)
        for lag in (0, 17, 100, 168):
            window = s[lag: lag + 32]
            expected = np.dot(window, t) / np.sqrt(np.dot(window, window) * te)
            assert fast[lag] == pytest.approx(expected, abs=1e-9)

    def test_volume_independent_detection(self):
        """Detection score must not depend on playback volume."""
        rng = np.random.default_rng(4)
        template = rng.standard_normal(64)
        base = np.concatenate([np.zeros(100), template, np.zeros(100)])
        loud = sliding_normalized_correlation(base * 100, template)
        quiet = sliding_normalized_correlation(base * 0.01, template)
        assert np.argmax(loud) == np.argmax(quiet)
        assert np.max(loud) == pytest.approx(np.max(quiet))

    def test_rejects_signal_shorter_than_template(self):
        with pytest.raises(DspError):
            sliding_normalized_correlation(np.ones(10), np.ones(20))

    def test_rejects_zero_energy_template(self):
        with pytest.raises(DspError):
            sliding_normalized_correlation(np.ones(100), np.zeros(10))
