"""Transmitter/receiver chain tests: loopback, sync, equalization."""

import numpy as np
import pytest

from repro.config import ModemConfig
from repro.errors import ModemError, PreambleNotFoundError
from repro.modem.bits import bit_error_rate, random_bits
from repro.modem.constellation import PSK8, QAM16, QASK, QPSK
from repro.modem.equalizer import (
    estimate_channel,
    estimate_channel_linear,
    estimate_channel_magnitude,
    equalize,
)
from repro.modem.frame import demodulate_block
from repro.modem.receiver import OfdmReceiver
from repro.modem.subchannels import ChannelPlan
from repro.modem.synchronizer import Synchronizer, fine_sync_offset
from repro.modem.transmitter import OfdmTransmitter


@pytest.fixture
def config():
    return ModemConfig()


@pytest.fixture
def plan(config):
    return ChannelPlan.from_config(config)


class TestTransmitter:
    def test_bits_per_symbol(self, config):
        tx = OfdmTransmitter(config, QPSK)
        assert tx.bits_per_symbol == 12 * 2

    def test_symbols_for_bits_rounds_up(self, config):
        tx = OfdmTransmitter(config, QPSK)
        assert tx.symbols_for_bits(24) == 1
        assert tx.symbols_for_bits(25) == 2

    def test_waveform_length_matches_layout(self, config):
        tx = OfdmTransmitter(config, QPSK)
        result = tx.modulate(random_bits(60, rng=0))
        assert result.waveform.size == result.layout.total_length
        assert result.layout.n_symbols == 3

    def test_padding_preserves_payload(self, config):
        tx = OfdmTransmitter(config, QPSK)
        bits = random_bits(30, rng=1)
        result = tx.modulate(bits)
        assert np.array_equal(result.padded_bits[:30], bits)
        assert np.all(result.padded_bits[30:] == 0)

    def test_rejects_empty_payload(self, config):
        tx = OfdmTransmitter(config, QPSK)
        with pytest.raises(ModemError):
            tx.modulate(np.zeros(0, dtype=np.uint8))

    def test_probe_waveform_has_layout(self, config):
        tx = OfdmTransmitter(config, QPSK)
        wave, layout = tx.probe_waveform(2)
        assert layout.n_symbols == 2
        assert wave.size == layout.total_length


class TestLoopback:
    @pytest.mark.parametrize(
        "constellation", [QASK, QPSK, PSK8, QAM16],
        ids=lambda c: c.name,
    )
    def test_clean_loopback_zero_ber(self, config, constellation):
        tx = OfdmTransmitter(config, constellation)
        rx = OfdmReceiver(config, constellation)
        bits = random_bits(96, rng=2)
        result = tx.modulate(bits)
        out = rx.receive(result.waveform, expected_bits=96)
        assert bit_error_rate(bits, out.bits) == 0.0

    def test_loopback_with_offset_and_noise(self, config, rng):
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(48, rng=3)
        wave = tx.modulate(bits).waveform
        recording = np.concatenate(
            [np.zeros(3000), wave, np.zeros(1000)]
        ) + 1e-4 * rng.standard_normal(4000 + wave.size)
        out = rx.receive(recording, expected_bits=48)
        assert bit_error_rate(bits, out.bits) == 0.0
        assert out.preamble_score > 0.9

    def test_loopback_through_quiet_channel(self, config, quiet_link, rng):
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(96, rng=4)
        wave = tx.modulate(bits).waveform
        recording, _ = quiet_link.transmit(wave, tx_spl=70.0, rng=rng)
        out = rx.receive(recording, expected_bits=96)
        assert bit_error_rate(bits, out.bits) <= 0.02

    def test_receiver_reports_high_psnr_on_clean_signal(self, config):
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(48, rng=5)
        out = rx.receive(tx.modulate(bits).waveform, expected_bits=48)
        assert out.psnr_db > 30.0

    def test_near_ultrasound_band_loopback(self):
        config = ModemConfig().near_ultrasound()
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(48, rng=6)
        out = rx.receive(tx.modulate(bits).waveform, expected_bits=48)
        assert bit_error_rate(bits, out.bits) == 0.0

    def test_receive_raises_without_preamble(self, config, rng):
        # Over a long noise recording, random NCC peaks can reach ~0.25,
        # so a strict receiver threshold is needed to refuse noise (the
        # deployed system additionally gates on energy first).
        rx = OfdmReceiver(config, QPSK, detection_threshold=0.5)
        with pytest.raises(PreambleNotFoundError):
            rx.receive(0.001 * rng.standard_normal(20000), expected_bits=24)

    def test_detect_only_on_silence_raises(self, config):
        rx = OfdmReceiver(config, QPSK)
        with pytest.raises(PreambleNotFoundError):
            rx.detect_only(np.zeros(20000))


class TestFineSync:
    def test_finds_injected_offset(self, config, plan):
        tx = OfdmTransmitter(config, QPSK)
        result = tx.modulate(random_bits(24, rng=7))
        wave = result.waveform
        cp_start = result.layout.first_symbol_offset
        # Perfect alignment: offset 0 must win.
        assert fine_sync_offset(wave, cp_start, config, 8) == 0
        # Shift the nominal position by +5: search should recover -5.
        assert fine_sync_offset(wave, cp_start + 5, config, 8) == -5

    def test_zero_cp_returns_zero(self, plan):
        config = ModemConfig(cp_length=0)
        assert fine_sync_offset(np.zeros(1000), 100, config, 8) == 0

    def test_synchronizer_extracts_all_bodies(self, config):
        tx = OfdmTransmitter(config, QPSK)
        result = tx.modulate(random_bits(72, rng=8))
        sync = Synchronizer(config)
        match = sync.locate(result.waveform)
        bodies, offsets = sync.extract_bodies(
            result.waveform, match, result.layout
        )
        assert bodies.shape == (3, config.fft_size)
        assert len(offsets) == 3


class TestEqualizer:
    def _spectrum_with_channel(self, config, plan, gain):
        """Build a received spectrum: unit pilots through channel `gain`."""
        spectrum = np.zeros(config.fft_size, dtype=complex)
        for k in plan.pilots:
            spectrum[k] = gain(k)
        for k in plan.data:
            spectrum[k] = gain(k) * (0.7 + 0.7j)
        return spectrum

    def test_flat_channel_recovered(self, config, plan):
        spectrum = self._spectrum_with_channel(
            config, plan, lambda k: 0.5 * np.exp(1j * 0.3)
        )
        est = estimate_channel(spectrum, plan)
        eq = equalize(spectrum, plan, est)
        for k in plan.data:
            assert eq[k] == pytest.approx(0.7 + 0.7j, abs=1e-9)

    def test_smooth_channel_recovered(self, config, plan):
        gain = lambda k: (0.4 + 0.01 * k) * np.exp(1j * 0.02 * k)
        spectrum = self._spectrum_with_channel(config, plan, gain)
        est = estimate_channel(spectrum, plan)
        eq = equalize(spectrum, plan, est)
        for k in plan.data:
            assert eq[k] == pytest.approx(0.7 + 0.7j, abs=0.05)

    def test_pilots_pinned_exactly(self, config, plan):
        gain = lambda k: (0.3 + 0.02 * k) * np.exp(1j * 0.05 * k)
        spectrum = self._spectrum_with_channel(config, plan, gain)
        est = estimate_channel(spectrum, plan)
        for k in plan.pilots:
            assert est.at_bin(k) == pytest.approx(gain(k), abs=1e-12)

    def test_magnitude_estimate_is_real_positive(self, config, plan):
        gain = lambda k: 0.5 * np.exp(1j * np.sin(k))  # wild phase
        spectrum = self._spectrum_with_channel(config, plan, gain)
        est = estimate_channel_magnitude(spectrum, plan)
        assert np.all(est.response.imag == 0.0)
        assert np.all(est.response.real > 0.0)
        # Magnitude tracked despite the wild phase.
        for k in plan.data:
            assert abs(est.at_bin(k)) == pytest.approx(0.5, abs=0.05)

    def test_linear_estimate_interpolates(self, config, plan):
        gain = lambda k: 0.2 + 0.01 * k
        spectrum = self._spectrum_with_channel(config, plan, gain)
        est = estimate_channel_linear(spectrum, plan)
        for k in plan.data:
            assert est.at_bin(k).real == pytest.approx(gain(k), abs=1e-9)

    def test_at_bin_out_of_band_raises(self, config, plan):
        spectrum = self._spectrum_with_channel(config, plan, lambda k: 1.0)
        est = estimate_channel(spectrum, plan)
        from repro.errors import DemodulationError

        with pytest.raises(DemodulationError):
            est.at_bin(100)
