"""Fleet simulator: population determinism, batched DTW bit-identity,
streaming aggregation, and the any-worker-count byte-identity contract."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.metrics import TailStats
from repro.core.stages import StageRng
from repro.core.trace import Tracer
from repro.errors import ConfigurationError, WearLockError
from repro.fleet import (
    FleetAggregate,
    FleetConfig,
    FleetScheduler,
    Histogram,
    build_population,
    run_shard,
    render_fleet_report,
    synthesize_user,
    user_sessions,
)
from repro.fleet.aggregate import SessionRecord
from repro.fleet.executor import precompute_prefilter
from repro.protocol.session import (
    PrecomputedPrefilter,
    SessionConfig,
    UnlockSession,
)
from repro.sensors.dtw import (
    dtw_distance,
    dtw_distance_batch,
    normalized_dtw,
    normalized_dtw_batch,
)
from repro.sensors.traces import ActivityKind, co_located_pair, magnitude
from repro.verifiers import PrecomputedVerifierEvidence


SMALL = FleetConfig(n_users=12, hours=24.0, seed=42)


def _doc(result, hours):
    return json.dumps(
        result.aggregate.to_dict(hours=hours), sort_keys=True, indent=2
    )


class TestBatchedDtw:
    def test_batched_dtw_matches_scalar(self):
        rng = np.random.default_rng(0)
        xs = rng.standard_normal((7, 40))
        ys = rng.standard_normal((7, 55))
        batch = dtw_distance_batch(xs, ys)
        scalar = np.array(
            [dtw_distance(x, y) for x, y in zip(xs, ys)]
        )
        # Bit-identical, not approximately equal: the wavefront runs
        # the same |x-y| + min(three neighbours) float ops per cell.
        assert np.array_equal(batch, scalar)

    def test_normalized_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        xs = rng.standard_normal((5, 60))
        ys = rng.standard_normal((5, 60))
        batch = normalized_dtw_batch(xs, ys)
        scalar = np.array(
            [normalized_dtw(x, y) for x, y in zip(xs, ys)]
        )
        assert np.array_equal(batch, scalar)

    def test_batch_rejects_bad_shapes(self):
        with pytest.raises(WearLockError):
            dtw_distance_batch(np.zeros((2, 3)), np.zeros((3, 3)))
        with pytest.raises(WearLockError):
            dtw_distance_batch(np.zeros(3), np.zeros((1, 3)))


class TestPrecomputedPrefilter:
    def test_precomputed_path_bit_identical(self):
        """Staged sensor pair + batched score == in-stage computation."""
        for seed in (7, 42):
            cfg = SessionConfig(seed=seed)
            base = UnlockSession(cfg).run()
            rng = StageRng(seed=seed).for_stage("sensor-capture")
            pair = co_located_pair(cfg.activity, rng=rng)
            score = float(
                normalized_dtw_batch(
                    magnitude(pair[0])[None, :],
                    magnitude(pair[1])[None, :],
                )[0]
            )
            pre = PrecomputedPrefilter(
                sensor_pair=pair,
                evidence=PrecomputedVerifierEvidence(motion_score=score),
            )
            fast = UnlockSession(SessionConfig(seed=seed)).run(
                precomputed=pre
            )
            assert fast.unlocked == base.unlocked
            assert fast.total_delay_s == base.total_delay_s
            assert fast.raw_ber == base.raw_ber
            assert fast.motion_score == base.motion_score
            assert fast.watch_energy_j == base.watch_energy_j


class TestPopulation:
    def test_user_synthesis_deterministic_and_order_free(self):
        a = synthesize_user(SMALL, 3)
        b = synthesize_user(SMALL, 3)
        assert a == b
        # Synthesizing other users first must not perturb user 3.
        list(build_population(SMALL))
        assert synthesize_user(SMALL, 3) == a

    def test_seed_changes_population(self):
        other = FleetConfig(n_users=12, hours=24.0, seed=43)
        users_a = list(build_population(SMALL))
        users_b = list(build_population(other))
        assert users_a != users_b

    def test_sessions_sorted_and_self_seeded(self):
        user = synthesize_user(SMALL, 0)
        specs = user_sessions(SMALL, user)
        assert [s.session_index for s in specs] == list(range(len(specs)))
        assert all(s.user_id == 0 for s in specs)
        hours = [s.hour for s in specs]
        assert hours == sorted(hours)
        assert len({s.seed for s in specs}) == len(specs)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(n_users=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(hours=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(stranger_rate=1.5)


class TestHistogram:
    def test_add_merge_quantile(self):
        a = Histogram(0.0, 10.0, 100)
        b = Histogram(0.0, 10.0, 100)
        for v in (1.0, 2.0, 3.0):
            a.add(v)
        for v in (7.0, 8.0, 9.0, 11.0, -1.0):
            b.add(v)
        a.merge(b)
        assert a.total == 8
        assert a.underflow == 1 and a.overflow == 1
        assert a.quantile(0.5) == pytest.approx(3.05)
        assert Histogram(0.0, 10.0, 100).quantile(0.5) is None

    def test_roundtrip(self):
        h = Histogram(0.0, 1.0, 10)
        for v in (0.05, 0.95, 0.95, 2.0):
            h.add(v)
        again = Histogram.from_dict(h.to_dict())
        assert np.array_equal(again.counts, h.counts)
        assert again.overflow == h.overflow

    def test_merge_rejects_mismatched_bins(self):
        with pytest.raises(ConfigurationError):
            Histogram(0.0, 1.0, 10).merge(Histogram(0.0, 1.0, 20))

    def test_tailstats_from_counts_matches_histogram(self):
        h = Histogram(0.0, 10.0, 100)
        values = np.linspace(0.1, 9.9, 200)
        for v in values:
            h.add(v)
        tail = TailStats.from_counts(h.counts, 0.0, 10.0)
        assert tail.p50 == h.quantile(0.50)
        assert tail.p95 == h.quantile(0.95)
        assert tail.n == 200


class TestFleetRun:
    def test_worker_count_invariance(self):
        """The headline contract: byte-identical aggregates for any
        worker count and shard size."""
        base = FleetScheduler(SMALL, workers=1, shard_users=5).run()
        pooled = FleetScheduler(SMALL, workers=2, shard_users=3).run()
        assert _doc(base, SMALL.hours) == _doc(pooled, SMALL.hours)

    def test_batched_prefilter_invariance(self):
        fast = FleetScheduler(SMALL, workers=1, batched=True).run()
        slow = FleetScheduler(SMALL, workers=1, batched=False).run()
        assert _doc(fast, SMALL.hours) == _doc(slow, SMALL.hours)

    def test_shard_merge_equals_whole(self):
        """Merging per-shard aggregates equals folding the whole stream:
        exactly for all integral state (counters, histograms), to float
        tolerance for the sums (addition regrouping moves the last
        ulp — which is why the *scheduler* folds records in canonical
        order instead of merging sub-aggregates; see the aggregate
        module docstring)."""
        whole = FleetAggregate().merge_records(
            run_shard(SMALL, 0, SMALL.n_users)
        )
        parts = FleetAggregate()
        for lo in range(0, SMALL.n_users, 4):
            part = FleetAggregate().merge_records(
                run_shard(SMALL, lo, min(lo + 4, SMALL.n_users))
            )
            parts.merge(part)

        def split(doc):
            ints, floats = {}, {}
            for key, value in doc.items():
                if isinstance(value, dict):
                    si, sf = split(value)
                    ints[key], floats[key] = si, sf
                elif isinstance(value, float):
                    floats[key] = value
                else:
                    ints[key] = value
            return ints, floats

        whole_i, whole_f = split(whole.to_dict())
        parts_i, parts_f = split(parts.to_dict())
        assert whole_i == parts_i

        def assert_close(a, b):
            for key, value in a.items():
                if isinstance(value, dict):
                    assert_close(value, b[key])
                else:
                    assert b[key] == pytest.approx(value, rel=1e-12)

        assert_close(whole_f, parts_f)

    def test_aggregate_content(self):
        result = FleetScheduler(SMALL, workers=1).run()
        doc = result.aggregate.to_dict(hours=SMALL.hours)
        assert doc["sessions"] == result.sessions > 0
        assert 0.0 < doc["success_rate"] <= 1.0
        assert doc["latency_p50_s"] <= doc["latency_p95_s"]
        assert set(doc["per_band"]) <= {"audible", "ultrasound"}
        assert all(
            g["sessions"] > 0 for g in doc["per_scenario"].values()
        )
        # Runtime telemetry must never leak into the document.
        flat = json.dumps(doc)
        assert "wall" not in flat and "workers" not in flat

    def test_tracer_counters(self):
        tracer = Tracer()
        result = FleetScheduler(SMALL, workers=1, tracer=tracer).run()
        totals = tracer.report().counter_totals()
        assert totals["sessions"] == float(result.sessions)
        assert totals["users"] == float(SMALL.n_users)

    def test_precompute_prefilter_covers_all_specs(self):
        user = synthesize_user(SMALL, 1)
        specs = user_sessions(SMALL, user)
        staged = precompute_prefilter(specs)
        assert len(staged) == len(specs)
        assert all(s.sensor_pair is not None for s in staged)
        assert all(isinstance(s.motion_score, float) for s in staged)


class TestReport:
    def test_render_covers_sections(self):
        result = FleetScheduler(SMALL, workers=1).run()
        doc = result.aggregate.to_dict(hours=SMALL.hours)
        text = render_fleet_report(
            doc, {"n_users": 12, "hours": 24.0, "seed": 42}
        )
        assert "# Fleet simulation report" in text
        assert "## Per-scenario breakdown" in text
        assert "| scenario |" in text
        assert "success rate" in text

    def test_render_from_empty_aggregate(self):
        doc = FleetAggregate().to_dict()
        text = render_fleet_report(doc)
        assert "# Fleet simulation report" in text


def test_session_record_is_compact():
    rec = SessionRecord(
        user_id=0,
        session_index=0,
        environment="office",
        phone="Nexus 6",
        band="audible",
        activity="sitting",
        co_located=True,
        unlocked=True,
        abort_reason="",
        mode="QPSK",
        delay_s=1.2,
        raw_ber=0.01,
        attempts=1,
        reprobes=0,
        recovered=False,
        faults_injected=0,
        watch_energy_j=0.5,
        phone_energy_j=0.4,
        pin_fallback=False,
    )
    agg = FleetAggregate()
    agg.observe(rec)
    assert agg.sessions == 1 and agg.unlocked == 1
    assert agg.per_scenario["office"].sessions == 1
