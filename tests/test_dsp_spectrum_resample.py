"""Tests for PSD estimation, band power and resampling."""

import numpy as np
import pytest

from repro.dsp.resample import apply_clock_skew, linear_resample
from repro.dsp.spectrum import band_power, noise_power_per_bin, welch_psd
from repro.errors import DspError


class TestWelchPsd:
    def test_tone_peak_at_right_frequency(self):
        fs = 8000.0
        t = np.arange(16384) / fs
        x = np.sin(2 * np.pi * 1000.0 * t)
        freqs, psd = welch_psd(x, fs, segment_size=512)
        assert abs(freqs[np.argmax(psd)] - 1000.0) < fs / 512

    def test_parseval_total_power(self):
        rng = np.random.default_rng(0)
        fs = 1000.0
        x = rng.standard_normal(100_000)
        freqs, psd = welch_psd(x, fs, segment_size=256)
        integrated = np.trapezoid(psd, freqs)
        assert integrated == pytest.approx(np.mean(x * x), rel=0.1)

    def test_short_signal_padded(self):
        freqs, psd = welch_psd(np.ones(10), 1000.0, segment_size=64)
        assert psd.size == 33

    def test_rejects_empty(self):
        with pytest.raises(DspError):
            welch_psd(np.zeros(0), 1000.0)


class TestBandPower:
    def test_tone_power_in_band(self):
        fs = 8000.0
        x = np.sin(2 * np.pi * 1000.0 * np.arange(80_000) / fs)
        inside = band_power(x, fs, 800.0, 1200.0)
        outside = band_power(x, fs, 2000.0, 3000.0)
        assert inside == pytest.approx(0.5, rel=0.15)
        assert outside < 0.01 * inside

    def test_rejects_bad_band(self):
        with pytest.raises(DspError):
            band_power(np.ones(100), 1000.0, 600.0, 400.0)


class TestNoisePowerPerBin:
    def test_white_noise_roughly_flat(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(256 * 64)
        p = noise_power_per_bin(x, 44100.0, 256)
        interior = p[5:-5]
        assert interior.max() / interior.min() < 10.0

    def test_tone_concentrates_in_one_bin(self):
        fs, n = 44100.0, 256
        k = 20
        x = np.sin(2 * np.pi * k * np.arange(n * 32) / n)
        p = noise_power_per_bin(x, fs, n)
        assert np.argmax(p) == k

    def test_output_length(self):
        p = noise_power_per_bin(np.ones(1024), 44100.0, 256)
        assert p.size == 129


class TestResample:
    def test_identity_factor(self):
        x = np.sin(np.linspace(0, 10, 500))
        y = linear_resample(x, 1.0)
        assert y.size == x.size
        assert np.allclose(y, x)

    def test_stretch_increases_length(self):
        x = np.ones(1000)
        assert linear_resample(x, 1.5).size == 1500

    def test_skew_preserves_waveform_shape(self):
        t = np.linspace(0, 1, 44100)
        x = np.sin(2 * np.pi * 100 * t)
        y = apply_clock_skew(x, 50.0)  # 50 ppm
        assert abs(y.size - x.size) <= 3
        n = min(x.size, y.size)
        assert np.corrcoef(x[:n], y[:n])[0, 1] > 0.99

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(DspError):
            linear_resample(np.ones(10), 0.0)

    def test_rejects_extreme_skew(self):
        with pytest.raises(DspError):
            apply_clock_skew(np.ones(10), 1e6)
