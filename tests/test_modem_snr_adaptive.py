"""Tests for SNR estimation and adaptive modulation."""

import numpy as np
import pytest

from repro.config import ModemConfig
from repro.errors import ModemError
from repro.modem.adaptive import (
    AdaptiveModulator,
    BerModel,
    TRANSMISSION_MODES,
)
from repro.modem.constellation import QPSK, get_constellation
from repro.modem.snr import (
    data_rate,
    ebn0_db_from_psnr,
    occupied_bandwidth,
    pilot_snr_db,
    pilot_snr_linear,
)
from repro.modem.subchannels import ChannelPlan


@pytest.fixture
def config():
    return ModemConfig()


@pytest.fixture
def plan(config):
    return ChannelPlan.from_config(config)


class TestPilotSnr:
    def _spectrum(self, config, plan, pilot_amp, noise_amp, rng):
        spectrum = noise_amp * (
            rng.standard_normal(config.fft_size)
            + 1j * rng.standard_normal(config.fft_size)
        )
        for k in plan.pilots:
            spectrum[k] += pilot_amp
        return spectrum

    def test_estimates_known_ratio(self, config, plan):
        rng = np.random.default_rng(0)
        # Per-bin noise power = 2 * noise_amp^2.
        noise_amp = 0.1
        pilot_amp = 10.0
        estimates = [
            pilot_snr_linear(
                self._spectrum(config, plan, pilot_amp, noise_amp, rng),
                plan,
            )
            for _ in range(50)
        ]
        expected = pilot_amp**2 / (2 * noise_amp**2)
        assert np.median(estimates) == pytest.approx(expected, rel=0.5)

    def test_zero_noise_returns_large_finite(self, config, plan):
        spectrum = np.zeros(config.fft_size, dtype=complex)
        for k in plan.pilots:
            spectrum[k] = 1.0
        assert pilot_snr_linear(spectrum, plan) >= 1e6

    def test_noise_only_clamped_positive(self, config, plan):
        rng = np.random.default_rng(1)
        spectrum = rng.standard_normal(config.fft_size) + 0j
        assert pilot_snr_linear(spectrum, plan) > 0.0

    def test_db_conversion(self, config, plan):
        rng = np.random.default_rng(2)
        s = self._spectrum(config, plan, 10.0, 0.1, rng)
        assert pilot_snr_db(s, plan) == pytest.approx(
            10 * np.log10(pilot_snr_linear(s, plan))
        )


class TestRates:
    def test_data_rate_formula(self, config, plan):
        # R = |D| log2(M) / (Tg + Ts)
        r = data_rate(config, plan, QPSK)
        expected = 12 * 2 / config.symbol_duration
        assert r == pytest.approx(expected)

    def test_higher_order_higher_rate(self, config, plan):
        assert data_rate(config, plan, get_constellation("8PSK")) > data_rate(
            config, plan, QPSK
        )

    def test_coding_rate_scales(self, config, plan):
        assert data_rate(config, plan, QPSK, coding_rate=0.5) == pytest.approx(
            0.5 * data_rate(config, plan, QPSK)
        )

    def test_occupied_bandwidth(self, config, plan):
        assert occupied_bandwidth(config, plan) == pytest.approx(
            12 * config.subchannel_bandwidth
        )

    def test_ebn0_additive_correction(self, config, plan):
        psnr = 20.0
        e = ebn0_db_from_psnr(psnr, config, plan, QPSK)
        b = occupied_bandwidth(config, plan)
        r = data_rate(config, plan, QPSK)
        assert e == pytest.approx(psnr + 10 * np.log10(b / r))


class TestBerModel:
    def test_monotone_decreasing_in_ebn0(self):
        model = BerModel()
        for mode in TRANSMISSION_MODES:
            bers = [model.ber(mode, e) for e in range(0, 50, 5)]
            assert all(a >= b for a, b in zip(bers, bers[1:]))

    def test_floors_respected(self):
        model = BerModel()
        assert model.ber("8PSK", 80.0) == pytest.approx(model.floor("8PSK"))
        assert model.ber("16QAM", 80.0) == pytest.approx(model.floor("16QAM"))

    def test_8psk_floor_blocks_tight_maxber(self):
        model = BerModel()
        assert model.min_ebn0_db("8PSK", 0.01) == float("inf")

    def test_min_ebn0_is_inverse_of_ber(self):
        model = BerModel()
        for mode in ("QPSK", "QASK"):
            threshold = model.min_ebn0_db(mode, 0.05)
            assert model.ber(mode, threshold) <= 0.05 + 1e-6
            assert model.ber(mode, threshold - 1.0) > 0.05

    def test_ber_approaches_half_at_low_snr(self):
        model = BerModel()
        assert model.ber("QPSK", -30.0) == pytest.approx(0.5, abs=0.02)
        assert model.ber("QPSK", -80.0) == pytest.approx(0.5, abs=1e-4)

    def test_rejects_bad_maxber(self):
        with pytest.raises(ModemError):
            BerModel().min_ebn0_db("QPSK", 0.7)

    def test_unknown_mode_raises(self):
        with pytest.raises(ModemError):
            BerModel().ber("64APSK", 10.0)


class TestAdaptiveModulator:
    def test_deployed_modes(self):
        assert TRANSMISSION_MODES == ("8PSK", "QPSK", "QASK")

    def test_high_snr_picks_highest_order(self):
        mod = AdaptiveModulator()
        decision = mod.select(ebn0_db=40.0, max_ber=0.1)
        assert decision.mode == "8PSK"

    def test_tight_constraint_steps_down(self):
        mod = AdaptiveModulator()
        decision = mod.select(ebn0_db=40.0, max_ber=0.01)
        assert decision.mode == "QPSK"  # 8PSK floor exceeds 0.01

    def test_low_snr_infeasible(self):
        mod = AdaptiveModulator()
        decision = mod.select(ebn0_db=-20.0, max_ber=0.01)
        assert decision.mode is None
        assert not decision.feasible

    def test_constellation_for_feasible(self):
        mod = AdaptiveModulator()
        decision = mod.select(40.0, 0.1)
        assert mod.constellation_for(decision).name == "8PSK"

    def test_constellation_for_infeasible_raises(self):
        mod = AdaptiveModulator()
        decision = mod.select(-20.0, 0.01)
        with pytest.raises(ModemError):
            mod.constellation_for(decision)

    def test_eavesdropper_penalty(self):
        """A receiver further away (lower Eb/N0) sees a predicted BER
        above the in-range receiver's constraint — the security rationale
        for picking the highest-order feasible mode."""
        mod = AdaptiveModulator()
        decision = mod.select(ebn0_db=12.0, max_ber=0.1)
        assert decision.feasible
        in_range_ber = mod.model.ber(decision.mode, 12.0)
        # 2.5 m away ≈ 8 dB less SNR than 1 m.
        eavesdropper_ber = mod.model.ber(decision.mode, 12.0 - 8.0)
        assert eavesdropper_ber > 2.0 * in_range_ber

    def test_rejects_empty_modes(self):
        with pytest.raises(ModemError):
            AdaptiveModulator(modes=())
