"""Tests for room impulse responses, delay spread, speaker/mic models."""

import numpy as np
import pytest

from repro.channel.hardware import MicrophoneModel, SpeakerModel
from repro.channel.multipath import RoomImpulseResponse, rms_delay_spread
from repro.dsp.spectrum import band_power
from repro.errors import ChannelError

FS = 44_100.0


class TestRmsDelaySpread:
    def test_single_tap_has_zero_spread(self):
        p = np.zeros(100)
        p[0] = 1.0
        assert rms_delay_spread(p, FS) == 0.0

    def test_two_equal_taps(self):
        p = np.zeros(100)
        p[0] = 1.0
        p[44] = 1.0  # ~1 ms later
        # Mean halfway between the taps, spread = half the separation.
        assert rms_delay_spread(p, FS) == pytest.approx(
            22.0 / FS, rel=1e-9
        )

    def test_empty_profile_rejected(self):
        with pytest.raises(ChannelError):
            rms_delay_spread(np.zeros(0), FS)

    def test_all_zero_profile_is_zero(self):
        assert rms_delay_spread(np.zeros(50), FS) == 0.0

    def test_negative_values_clipped(self):
        p = np.array([1.0, -5.0, 0.0])
        assert rms_delay_spread(p, FS) == 0.0


class TestRoomImpulseResponse:
    def test_direct_tap_dominates_los(self):
        room = RoomImpulseResponse()
        ir = room.sample(np.random.default_rng(0))
        assert abs(ir[0]) == pytest.approx(room.direct_gain)
        assert abs(ir[0]) > np.max(np.abs(ir[1:]))

    def test_nlos_attenuates_direct_path(self):
        room = RoomImpulseResponse()
        blocked = room.nlos(blocking_db=20.0)
        assert blocked.direct_gain == pytest.approx(
            room.direct_gain * 0.1
        )

    def test_nlos_raises_delay_spread(self):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        room = RoomImpulseResponse()
        los_tau = rms_delay_spread(room.delay_profile(rng_a), FS)
        nlos_tau = rms_delay_spread(
            room.nlos(24.0).delay_profile(rng_b), FS
        )
        assert nlos_tau > los_tau

    def test_apply_convolves(self):
        room = RoomImpulseResponse()
        x = np.zeros(100)
        x[0] = 1.0
        y = room.apply(x, rng=np.random.default_rng(2))
        assert y.size == 100 + room.tail_length - 1
        assert abs(y[0]) == pytest.approx(room.direct_gain)

    def test_rejects_bad_params(self):
        with pytest.raises(ChannelError):
            RoomImpulseResponse(rt60=0.0)
        with pytest.raises(ChannelError):
            RoomImpulseResponse(tail_length=2)


class TestSpeakerModel:
    def test_output_longer_than_input_when_ringing(self):
        sp = SpeakerModel()
        x = np.sin(np.linspace(0, 100, 1000))
        y = sp.play(x)
        assert y.size > x.size  # the paper's ringing observation

    def test_rise_effect_attenuates_head(self):
        sp = SpeakerModel(ringing_gain=0.0, phase_ripple_rad=0.0)
        x = np.ones(2000)
        y = sp.play(x)
        assert abs(y[0]) < 0.1
        assert y[1500] == pytest.approx(1.0, abs=0.05)

    def test_clipping(self):
        sp = SpeakerModel(clip_level=0.5)
        y = sp.play(np.ones(500) * 10.0)
        assert np.max(np.abs(y)) <= 0.5

    def test_phase_ripple_preserves_magnitude_spectrum(self):
        sp = SpeakerModel(
            rise_time=0.0, ringing_gain=0.0, clip_level=100.0
        )
        rng = np.random.default_rng(3)
        x = rng.standard_normal(4096) * 0.01
        y = sp.play(x)
        mx = np.abs(np.fft.rfft(x))
        my = np.abs(np.fft.rfft(y[: x.size]))
        # All-pass: magnitudes match within numerical tolerance.
        assert np.allclose(mx[10:-10], my[10:-10], rtol=1e-6)

    def test_phase_response_deterministic_per_device(self):
        a = SpeakerModel(device_seed=5)
        b = SpeakerModel(device_seed=5)
        f = np.linspace(1000, 6000, 50)
        assert np.allclose(a.phase_response(f), b.phase_response(f))

    def test_different_devices_differ(self):
        a = SpeakerModel(device_seed=5)
        b = SpeakerModel(device_seed=6)
        f = np.linspace(1000, 6000, 50)
        assert not np.allclose(a.phase_response(f), b.phase_response(f))


class TestMicrophoneModel:
    def _tone(self, freq, n=8192):
        return 0.01 * np.sin(2 * np.pi * freq * np.arange(n) / FS)

    def test_watch_lowpass_kills_ultrasound(self):
        mic = MicrophoneModel(noise_floor_spl=-np.inf)
        passed = mic.record(self._tone(3000.0))
        killed = mic.record(self._tone(16000.0))
        assert band_power(killed, FS, 15000.0, 17000.0) < 0.01 * band_power(
            passed, FS, 2000.0, 4000.0
        )

    def test_knee_fades_5_to_7khz(self):
        mic = MicrophoneModel(noise_floor_spl=-np.inf)
        low = mic.record(self._tone(3000.0))
        knee = mic.record(self._tone(6500.0))
        p_low = band_power(low, FS, 2500.0, 3500.0)
        p_knee = band_power(knee, FS, 6000.0, 7000.0)
        assert p_knee < 0.7 * p_low

    def test_wide_band_passes_ultrasound(self):
        mic = MicrophoneModel.wide_band(FS)
        x = self._tone(17000.0)
        y = mic.record(x, rng=np.random.default_rng(0))
        assert band_power(y, FS, 16000.0, 18000.0) > 0.5 * band_power(
            x, FS, 16000.0, 18000.0
        )

    def test_noise_floor_added(self):
        mic = MicrophoneModel(noise_floor_spl=30.0)
        y = mic.record(np.zeros(44100), rng=np.random.default_rng(1))
        from repro.dsp.energy import signal_spl

        assert signal_spl(y) == pytest.approx(30.0, abs=1.5)

    def test_rejects_bad_lowpass(self):
        with pytest.raises(ChannelError):
            MicrophoneModel(lowpass_hz=30_000.0)
