"""Tests for bit utilities: packing, PRBS, BER."""

import numpy as np
import pytest

from repro.errors import ModemError
from repro.modem.bits import (
    bit_error_rate,
    bit_errors,
    pack_bits,
    prbs_bits,
    random_bits,
    unpack_bits,
)


class TestPackUnpack:
    def test_roundtrip(self):
        bits = random_bits(37, rng=0)
        packed = pack_bits(bits)
        assert np.array_equal(unpack_bits(packed, 37), bits)

    def test_known_byte(self):
        bits = np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=np.uint8)
        assert pack_bits(bits) == b"\xaa"

    def test_empty(self):
        assert pack_bits(np.zeros(0, dtype=np.uint8)) == b""

    def test_rejects_non_binary(self):
        with pytest.raises(ModemError):
            pack_bits(np.array([0, 1, 2]))

    def test_unpack_bounds(self):
        with pytest.raises(ModemError):
            unpack_bits(b"\x00", 9)


class TestPrbs:
    def test_deterministic(self):
        assert np.array_equal(prbs_bits(100), prbs_bits(100))

    def test_period_127(self):
        seq = prbs_bits(254)
        assert np.array_equal(seq[:127], seq[127:254])
        # Within one period, not constant.
        assert 0 < seq[:127].sum() < 127

    def test_balanced(self):
        seq = prbs_bits(127)
        assert seq.sum() in (63, 64)

    def test_rejects_zero_seed(self):
        with pytest.raises(ModemError):
            prbs_bits(10, seed=0)


class TestBer:
    def test_identical_is_zero(self):
        b = random_bits(100, rng=1)
        assert bit_error_rate(b, b.copy()) == 0.0

    def test_all_flipped_is_one(self):
        b = random_bits(64, rng=2)
        assert bit_error_rate(b, 1 - b) == 1.0

    def test_counts_specific_errors(self):
        a = np.array([0, 0, 0, 0], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert bit_errors(a, b) == 2
        assert bit_error_rate(a, b) == 0.5

    def test_length_mismatch_counts_as_errors(self):
        a = np.zeros(10, dtype=np.uint8)
        b = np.zeros(6, dtype=np.uint8)
        assert bit_errors(a, b) == 4
        assert bit_error_rate(a, b) == pytest.approx(0.4)

    def test_empty_sent_rejected(self):
        with pytest.raises(ModemError):
            bit_error_rate(np.zeros(0), np.zeros(4))


class TestRandomBits:
    def test_reproducible(self):
        assert np.array_equal(random_bits(50, rng=7), random_bits(50, rng=7))

    def test_only_zeros_and_ones(self):
        b = random_bits(1000, rng=8)
        assert set(np.unique(b)) <= {0, 1}
