"""Tests for hardware fingerprinting, ambient co-location, WAV I/O."""

import numpy as np
import pytest

from repro.channel.hardware import SpeakerModel
from repro.channel.link import AcousticLink
from repro.channel.scenarios import get_environment
from repro.config import ModemConfig
from repro.core.colocation import AmbientComparator
from repro.errors import ModemError, SecurityError, WearLockError
from repro.modem.frame import demodulate_block, frame_layout
from repro.modem.probe import ChannelProber
from repro.modem.subchannels import ChannelPlan
from repro.modem.synchronizer import Synchronizer
from repro.modem.wavio import read_wav, write_wav
from repro.security.attacks import RelayAttacker
from repro.security.fingerprint import (
    HardwareFingerprint,
    phase_signature,
    signature_distance,
)


@pytest.fixture
def config():
    return ModemConfig()


@pytest.fixture
def plan(config):
    return ChannelPlan.from_config(config)


def _probe_spectrum(config, distort=None, seed=0, speaker=None):
    env = get_environment("quiet_room")
    prober = ChannelProber(config)
    sync = Synchronizer(config)
    kwargs = {}
    if speaker is not None:
        kwargs["speaker"] = speaker
    link = AcousticLink(
        room=env.room, noise=env.noise, distance_m=0.3, seed=seed,
        **kwargs,
    )
    rec, _ = link.transmit(
        prober.build_probe(), tx_spl=72.0,
        rng=np.random.default_rng(seed),
    )
    if distort is not None:
        rec = distort(rec)
    match = sync.locate(rec)
    bodies, _ = sync.extract_bodies(rec, match, frame_layout(config, 2))
    return demodulate_block(config, bodies[0])


class TestPhaseSignature:
    def test_bulk_delay_invariance(self, config, plan):
        spectrum = _probe_spectrum(config, seed=1)
        # A pure delay multiplies bin k by exp(-2πi k d / N).
        k = np.arange(config.fft_size)
        delayed = spectrum * np.exp(-2j * np.pi * k * 3.0 / config.fft_size)
        a = phase_signature(spectrum, plan)
        b = phase_signature(delayed, plan)
        assert signature_distance(a, b) < 0.05

    def test_distance_zero_for_identical(self, plan, config):
        s = _probe_spectrum(config, seed=2)
        sig = phase_signature(s, plan)
        assert signature_distance(sig, sig) == 0.0

    def test_rejects_short_spectrum(self, plan):
        with pytest.raises(SecurityError):
            phase_signature(np.zeros(8, dtype=complex), plan)

    def test_rejects_mismatched_signatures(self):
        with pytest.raises(SecurityError):
            signature_distance(np.zeros(3), np.zeros(4))


class TestHardwareFingerprint:
    def test_genuine_device_verifies(self, config, plan):
        enroll = [_probe_spectrum(config, seed=s) for s in range(4)]
        fp = HardwareFingerprint.enroll(enroll, plan)
        ok, distance = fp.verify(_probe_spectrum(config, seed=20), plan)
        assert ok
        assert distance < 0.05

    def test_relay_detected(self, config, plan):
        enroll = [_probe_spectrum(config, seed=s) for s in range(4)]
        fp = HardwareFingerprint.enroll(enroll, plan)
        relay = RelayAttacker(extra_phase_ripple_rad=0.6)
        ok, distance = fp.verify(
            _probe_spectrum(
                config,
                distort=lambda r: relay.distort(r, config.sample_rate),
                seed=21,
            ),
            plan,
        )
        assert not ok
        assert distance > 0.08

    def test_different_speaker_detected(self, config, plan):
        """A different physical device (another phase ripple) fails."""
        enroll = [_probe_spectrum(config, seed=s) for s in range(4)]
        fp = HardwareFingerprint.enroll(enroll, plan)
        other = SpeakerModel(device_seed=999)
        ok, distance = fp.verify(
            _probe_spectrum(config, seed=22, speaker=other), plan
        )
        assert not ok

    def test_enroll_rejects_empty(self, plan):
        with pytest.raises(SecurityError):
            HardwareFingerprint.enroll([], plan)


class TestAmbientComparator:
    def test_same_scene_co_located(self, rng):
        env = get_environment("cafe")
        link = AcousticLink(room=env.room, noise=env.noise, seed=1)
        a = link.record_ambient(0.3, rng=rng)
        b = link.record_ambient(0.3, rng=rng)
        comparator = AmbientComparator()
        decided, score = comparator.co_located(a, b)
        assert decided
        assert score > 0.5

    def test_different_scenes_less_similar(self, rng):
        cafe = get_environment("cafe")
        quiet = get_environment("quiet_room")
        a = AcousticLink(
            room=cafe.room, noise=cafe.noise, seed=2
        ).record_ambient(0.3, rng=rng)
        b = AcousticLink(
            room=quiet.room, noise=quiet.noise, seed=3
        ).record_ambient(0.3, rng=rng)
        c = AcousticLink(
            room=cafe.room, noise=cafe.noise, seed=4
        ).record_ambient(0.3, rng=rng)
        comparator = AmbientComparator()
        assert comparator.similarity(a, c) > comparator.similarity(a, b)

    def test_rejects_tiny_recording(self):
        comparator = AmbientComparator()
        with pytest.raises(WearLockError):
            comparator.band_profile(np.zeros(10))

    def test_rejects_bad_band(self):
        with pytest.raises(WearLockError):
            AmbientComparator(low_hz=5000.0, high_hz=100.0)


class TestWavIo:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "frame.wav"
        wave = np.sin(2 * np.pi * 1000 * np.arange(4410) / 44100.0)
        write_wav(path, wave, 44100.0)
        recovered, rate = read_wav(path)
        assert rate == 44100.0
        assert recovered.size == wave.size
        assert np.corrcoef(wave, recovered)[0, 1] > 0.9999

    def test_normalization_to_peak(self, tmp_path):
        path = tmp_path / "loud.wav"
        write_wav(path, 100.0 * np.sin(np.linspace(0, 50, 1000)), peak=0.5)
        recovered, _ = read_wav(path)
        assert np.max(np.abs(recovered)) == pytest.approx(0.5, abs=0.01)

    def test_modem_frame_survives_wav(self, tmp_path):
        from repro.modem.bits import bit_error_rate, random_bits
        from repro.modem.constellation import QPSK
        from repro.modem.receiver import OfdmReceiver
        from repro.modem.transmitter import OfdmTransmitter

        config = ModemConfig()
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(96, rng=11)
        path = tmp_path / "modem.wav"
        write_wav(path, tx.modulate(bits).waveform, config.sample_rate)
        samples, _ = read_wav(path)
        out = rx.receive(samples, expected_bits=96)
        assert bit_error_rate(bits, out.bits) == 0.0

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ModemError):
            write_wav(tmp_path / "x.wav", np.zeros(0))


class TestCli:
    def test_info(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "44100" in out
        assert "grocery_store" in out

    def test_unlock(self, capsys):
        from repro.cli import main

        rc = main([
            "unlock", "--environment", "office",
            "--distance", "0.4", "--seed", "77",
        ])
        out = capsys.readouterr().out
        assert "unlocked:" in out
        assert rc in (0, 1)

    def test_encode_decode_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        wav = tmp_path / "payload.wav"
        assert main(["encode", "deadbeef", str(wav)]) == 0
        capsys.readouterr()
        assert main(["decode", str(wav), "--bits", "32"]) == 0
        out = capsys.readouterr().out.strip().splitlines()[0]
        assert out == "deadbeef"

    def test_experiment_json(self, capsys):
        from repro.cli import main

        assert main(["experiment", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "bluetooth" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["experiment", "fig99"]) == 2
