"""Stage-graph engine: ordering, aborts, tracing, RNG, regressions.

Covers the generic engine in :mod:`repro.core.stages`, the Fig. 2
unlock stages in :mod:`repro.protocol.stages`, and the refactored
:class:`~repro.protocol.session.UnlockSession` built on top of them.
"""

import numpy as np
import pytest

from repro.core.stages import (
    EngineResult,
    SessionContext,
    Stage,
    StageEngine,
    StageResult,
    StageRng,
)
from repro.core.trace import NullTracer, Tracer
from repro.errors import WearLockError
from repro.protocol.session import (
    AbortReason,
    SessionConfig,
    UnlockSession,
)
from repro.protocol.stages import UNLOCK_STAGE_NAMES, build_unlock_stages
from repro.security.otp import OtpManager


class _Recorder:
    """Dummy stage that logs its execution and optionally aborts."""

    def __init__(self, name, log, abort=False):
        self.name = name
        self._log = log
        self._abort = abort

    def run(self, ctx):
        self._log.append(self.name)
        if self._abort:
            return StageResult.abort(f"abort_in_{self.name}")
        return StageResult.proceed()


def _run_session(cfg):
    return UnlockSession(cfg, otp=OtpManager(b"k")).run()


class TestStageEngine:
    def test_runs_stages_in_order(self):
        log = []
        stages = [_Recorder(f"s{i}", log) for i in range(5)]
        result = StageEngine(stages).execute(SessionContext())
        assert log == [f"s{i}" for i in range(5)]
        assert result.completed
        assert result.stages_run == tuple(log)
        assert result.stopped_by is None
        assert result.abort_reason is None

    @pytest.mark.parametrize("abort_at", range(8))
    def test_abort_short_circuits_at_every_position(self, abort_at):
        log = []
        stages = [
            _Recorder(f"s{i}", log, abort=(i == abort_at)) for i in range(8)
        ]
        result = StageEngine(stages).execute(SessionContext())
        # Everything up to and including the aborting stage ran ...
        assert log == [f"s{i}" for i in range(abort_at + 1)]
        # ... and nothing after it.
        assert result.stages_run == tuple(log)
        assert result.stopped_by == f"s{abort_at}"
        assert result.abort_reason == f"abort_in_s{abort_at}"
        assert not result.completed

    def test_rejects_duplicate_stage_names(self):
        log = []
        with pytest.raises(WearLockError):
            StageEngine([_Recorder("a", log), _Recorder("a", log)])

    def test_rejects_empty_pipeline(self):
        with pytest.raises(WearLockError):
            StageEngine([])

    def test_abort_reason_must_be_non_empty(self):
        with pytest.raises(WearLockError):
            StageResult.abort("")

    def test_unlock_stages_satisfy_protocol(self):
        for stage in build_unlock_stages():
            assert isinstance(stage, Stage)
        assert UnlockSession.stage_names == UNLOCK_STAGE_NAMES
        assert len(set(UNLOCK_STAGE_NAMES)) == len(UNLOCK_STAGE_NAMES) == 8


class TestSessionAborts:
    """Each real abort path stops at its stage, and only there."""

    def _assert_stopped(self, outcome, stage, reason):
        assert outcome.abort_reason is reason
        assert outcome.stopped_by == stage
        assert not outcome.unlocked
        # stages_run is exactly the Fig. 2 prefix ending at the abort.
        idx = UNLOCK_STAGE_NAMES.index(stage)
        assert outcome.stages_run == UNLOCK_STAGE_NAMES[: idx + 1]

    def test_no_wireless_aborts_first(self):
        outcome = _run_session(
            SessionConfig(wireless_connected=False, seed=1)
        )
        self._assert_stopped(
            outcome, "wireless-check", AbortReason.NO_WIRELESS_LINK
        )

    def test_motion_mismatch_aborts_at_prefilter(self):
        outcome = _run_session(
            SessionConfig(environment="office", co_located=False, seed=0)
        )
        self._assert_stopped(
            outcome, "prefilter", AbortReason.MOTION_MISMATCH
        )

    def test_no_feasible_mode_aborts_at_mode_select(self):
        outcome = _run_session(
            SessionConfig(
                environment="office",
                distance_m=3.0,
                seed=5,
                use_motion_filter=False,
            )
        )
        self._assert_stopped(
            outcome, "mode-select", AbortReason.NO_FEASIBLE_MODE
        )

    def test_token_rejected_aborts_at_verify(self):
        outcome = _run_session(
            SessionConfig(
                environment="grocery_store",
                distance_m=0.7,
                seed=1,
                use_motion_filter=False,
            )
        )
        self._assert_stopped(outcome, "verify", AbortReason.TOKEN_REJECTED)

    def test_completed_session_reports_no_stop(self):
        outcome = _run_session(SessionConfig(environment="office", seed=42))
        assert outcome.unlocked
        assert outcome.stopped_by is None
        assert outcome.stages_run == UNLOCK_STAGE_NAMES


class TestTracing:
    def test_trace_spans_match_stages_and_timeline(self):
        tracer = Tracer()
        cfg = SessionConfig(environment="office", seed=42)
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run(tracer=tracer)
        trace = outcome.trace
        assert trace is not None
        # One top-level span per executed stage, in execution order.
        assert tuple(trace.stage_names()) == outcome.stages_run

        tops = [s for s in trace.spans if s.parent is None]
        # Simulated time is monotone and contiguous across stages ...
        for a, b in zip(tops, tops[1:]):
            assert b.sim_start_s == pytest.approx(a.sim_end_s)
            assert a.sim_end_s >= a.sim_start_s
        # ... and covers exactly the outcome's total delay.
        assert trace.sim_total_s() == pytest.approx(outcome.total_delay_s)

        # Per-stage energy deltas add up to the session totals.
        assert sum(s.watch_energy_j for s in tops) == pytest.approx(
            outcome.watch_energy_j
        )
        assert sum(s.phone_energy_j for s in tops) == pytest.approx(
            outcome.phone_energy_j
        )

        # The expensive DSP calls appear as children of their stages.
        probe = trace.find("modem.analyze_probe")
        demod = trace.find("modem.demodulate")
        assert probe is not None and probe.parent == "probe-process"
        assert demod is not None and demod.parent == "verify"

    def test_aborting_stage_span_is_marked(self):
        tracer = Tracer()
        cfg = SessionConfig(wireless_connected=False, seed=1)
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run(tracer=tracer)
        span = outcome.trace.find("wireless-check")
        assert span.status == "abort"
        assert span.tags["abort_reason"] == "no_wireless_link"

    def test_untraced_session_has_no_trace(self):
        outcome = _run_session(SessionConfig(environment="office", seed=42))
        assert outcome.trace is None

    def test_trace_export_roundtrip(self, tmp_path):
        import json

        tracer = Tracer()
        UnlockSession(
            SessionConfig(environment="office", seed=42), otp=OtpManager(b"k")
        ).run(tracer=tracer)
        path = tmp_path / "trace.json"
        tracer.export_json(path)
        data = json.loads(path.read_text())
        names = [s["name"] for s in data["spans"] if s["parent"] is None]
        assert names == list(UNLOCK_STAGE_NAMES)


class TestStageRng:
    def test_streams_are_stage_isolated(self):
        # Draws on one stage's stream must not perturb another's.
        a = StageRng(seed=99)
        b = StageRng(seed=99)
        a.for_stage("probe-tx").random(1000)  # extra traffic on a
        assert (
            a.for_stage("otp-tx").random(4).tolist()
            == b.for_stage("otp-tx").random(4).tolist()
        )

    def test_seed_for_is_deterministic_and_named(self):
        a, b = StageRng(seed=5), StageRng(seed=5)
        assert a.seed_for("wireless") == b.seed_for("wireless")
        assert a.seed_for("wireless") != a.seed_for("acoustic-link")

    def test_shared_mode_threads_one_stream(self):
        rng = np.random.default_rng(3)
        shared = StageRng(shared=rng)
        assert shared.for_stage("x") is rng
        assert shared.for_stage("y") is rng

    def test_none_seed_is_internally_consistent(self):
        r = StageRng(seed=None)
        # Memoized: the same stage always gets the same generator.
        assert r.for_stage("probe-tx") is r.for_stage("probe-tx")


class TestSeededRegression:
    """The refactored session reproduces fixed-seed outcomes exactly.

    The pre-refactor session unlocked with 8PSK in all six of these
    configurations; the stage-graph session must keep doing so, and its
    numeric fields are pinned so future refactors can't silently drift.
    """

    GOLDENS = {
        # key: (config kwargs, ber, psnr_db, delay_s)
        "office-42": (
            dict(environment="office", distance_m=0.4, seed=42),
            0.03225806451612903, 25.08411955667528, 1.3130718221979352,
        ),
        "office-45": (
            dict(environment="office", distance_m=0.4, seed=45),
            0.04516129032258064, 23.88497510326614, 1.5410475778673693,
        ),
        "ultrasound-49": (
            dict(environment="office", distance_m=0.3,
                 band="ultrasound", seed=49),
            0.05161290322580645, 46.31257412123151, 1.468099864488135,
        ),
        "nofilter-13": (
            dict(environment="office", distance_m=0.4, seed=13,
                 use_motion_filter=False, use_noise_filter=False),
            0.06451612903225806, 25.22153988586338, 1.5368077876255977,
        ),
        "quiet-70": (
            dict(environment="quiet_room", distance_m=0.4, seed=70),
            0.05806451612903226, 15.395412481639223, 1.3909884029998143,
        ),
        "grocery-71": (
            dict(environment="grocery_store", distance_m=0.4, seed=71),
            0.17419354838709677, 16.66479292858358, 1.3536452451885101,
        ),
    }

    @pytest.mark.parametrize("key", sorted(GOLDENS))
    def test_seeded_outcome_fields(self, key):
        kwargs, ber, psnr, delay = self.GOLDENS[key]
        outcome = _run_session(SessionConfig(**kwargs))
        assert outcome.unlocked
        assert outcome.abort_reason is AbortReason.NONE
        assert outcome.mode == "8PSK"
        assert outcome.stages_run == UNLOCK_STAGE_NAMES
        assert outcome.raw_ber == pytest.approx(ber, abs=1e-12)
        assert outcome.psnr_db == pytest.approx(psnr, rel=1e-9)
        assert outcome.total_delay_s == pytest.approx(delay, rel=1e-9)

    def test_same_seed_is_bit_identical(self):
        cfg = SessionConfig(environment="office", seed=42)
        a, b = _run_session(cfg), _run_session(cfg)
        assert a.raw_ber == b.raw_ber
        assert a.psnr_db == b.psnr_db
        assert a.total_delay_s == b.total_delay_s
        assert a.watch_energy_j == b.watch_energy_j

    def test_legacy_generator_api_still_works(self):
        cfg = SessionConfig(environment="office")
        a = UnlockSession(cfg, otp=OtpManager(b"k")).run(
            rng=np.random.default_rng(7)
        )
        b = UnlockSession(cfg, otp=OtpManager(b"k")).run(
            rng=np.random.default_rng(7)
        )
        assert a.raw_ber == b.raw_ber
        assert a.unlocked == b.unlocked
