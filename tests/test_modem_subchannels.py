"""Tests for sub-channel planning and jam-avoidance re-planning."""

import numpy as np
import pytest

from repro.config import ModemConfig
from repro.errors import ModemError
from repro.modem.subchannels import ChannelPlan


@pytest.fixture
def default_plan():
    return ChannelPlan.from_config(ModemConfig())


class TestChannelPlan:
    def test_paper_default_assignment(self, default_plan):
        assert default_plan.data == (
            16, 17, 18, 20, 21, 22, 24, 25, 26, 28, 29, 30,
        )
        assert default_plan.pilots == (7, 11, 15, 19, 23, 27, 31, 35)

    def test_pilot_spacing(self, default_plan):
        assert default_plan.pilot_spacing == 4

    def test_band(self, default_plan):
        assert default_plan.band == (7, 35)

    def test_null_channels_inside_band(self, default_plan):
        nulls = default_plan.null_channels(margin=0)
        occupied = set(default_plan.data) | set(default_plan.pilots)
        assert set(nulls) & occupied == set()
        assert all(7 <= b <= 35 for b in nulls)
        # The gaps between default data bins: 8,9,10,12,...
        assert 8 in nulls and 12 in nulls

    def test_quiet_null_channels_avoid_neighbours(self, default_plan):
        quiet = default_plan.quiet_null_channels(min_distance=2)
        occupied = set(default_plan.data) | set(default_plan.pilots)
        for b in quiet:
            assert all(abs(b - o) >= 2 for o in occupied)

    def test_candidates_fill_pilot_span(self, default_plan):
        cands = default_plan.candidate_data_channels()
        assert min(cands) == 8
        assert max(cands) == 34
        assert set(cands) & set(default_plan.pilots) == set()

    def test_rejects_overlap(self):
        with pytest.raises(ModemError):
            ChannelPlan(fft_size=256, data=(7, 16), pilots=(7, 11, 15))

    def test_rejects_unequal_pilot_spacing(self):
        with pytest.raises(ModemError):
            ChannelPlan(fft_size=256, data=(16,), pilots=(7, 11, 16))

    def test_rejects_data_outside_pilot_span(self):
        with pytest.raises(ModemError):
            ChannelPlan(fft_size=256, data=(40,), pilots=(7, 11, 15))

    def test_rejects_single_pilot(self):
        with pytest.raises(ModemError):
            ChannelPlan(fft_size=256, data=(8,), pilots=(7,))


class TestSelection:
    def test_avoids_jammed_bins(self, default_plan):
        noise = np.ones(129)
        for jammed in (17, 21, 25):
            noise[jammed] = 1000.0
        new = default_plan.select_data_channels(noise)
        assert len(new.data) == len(default_plan.data)
        for jammed in (17, 21, 25):
            assert jammed not in new.data

    def test_prefers_low_frequency_among_clean(self, default_plan):
        noise = np.ones(129)
        new = default_plan.select_data_channels(noise)
        cands = sorted(default_plan.candidate_data_channels())
        assert new.data == tuple(cands[: len(default_plan.data)])

    def test_keeps_capacity_by_default(self, default_plan):
        noise = np.ones(129)
        new = default_plan.select_data_channels(noise)
        assert len(new.data) == len(default_plan.data)

    def test_custom_channel_count(self, default_plan):
        noise = np.ones(129)
        new = default_plan.select_data_channels(noise, n_channels=6)
        assert len(new.data) == 6

    def test_falls_back_to_least_noisy_when_all_dirty(self, default_plan):
        rng = np.random.default_rng(0)
        noise = 10.0 ** rng.uniform(0, 6, size=129)
        new = default_plan.select_data_channels(noise, headroom_db=0.1)
        assert len(new.data) == len(default_plan.data)
        # The selected set should have lower total noise than the worst
        # possible set of the same size.
        cands = default_plan.candidate_data_channels()
        chosen_noise = sum(noise[b] for b in new.data)
        worst = sorted((noise[b] for b in cands), reverse=True)
        assert chosen_noise < sum(worst[: len(new.data)])

    def test_pilots_never_change(self, default_plan):
        noise = np.ones(129)
        new = default_plan.select_data_channels(noise)
        assert new.pilots == default_plan.pilots

    def test_rejects_too_many_channels(self, default_plan):
        with pytest.raises(ModemError):
            default_plan.select_data_channels(np.ones(129), n_channels=99)

    def test_rejects_short_noise_vector(self, default_plan):
        with pytest.raises(ModemError):
            default_plan.select_data_channels(np.ones(10))

    def test_frequencies_reporting(self, default_plan):
        f = default_plan.frequencies(44100.0)
        assert len(f["data"]) == 12
        assert f["pilots"][0] == pytest.approx(7 * 44100 / 256)
