"""Tests for preamble detection and OFDM frame construction."""

import numpy as np
import pytest

from repro.config import ModemConfig
from repro.errors import ModemError, PreambleNotFoundError
from repro.modem.frame import (
    PILOT_VALUE,
    assemble_frame,
    demodulate_block,
    frame_layout,
    modulate_symbol,
)
from repro.modem.preamble import PreambleDetector, build_preamble
from repro.modem.subchannels import ChannelPlan


@pytest.fixture
def config():
    return ModemConfig()


@pytest.fixture
def plan(config):
    return ChannelPlan.from_config(config)


class TestPreambleDetector:
    def test_detects_clean_preamble(self, config):
        det = PreambleDetector(config)
        preamble = build_preamble(config)
        recording = np.concatenate(
            [np.zeros(1000), preamble, np.zeros(500)]
        )
        match = det.detect(recording)
        assert match.start == 1000 + config.preamble_length
        assert match.score > 0.95

    def test_detects_in_noise(self, config, rng):
        det = PreambleDetector(config)
        preamble = build_preamble(config)
        recording = np.concatenate(
            [np.zeros(800), preamble, np.zeros(400)]
        ) + 0.1 * rng.standard_normal(800 + 256 + 400)
        match = det.detect(recording)
        assert abs(match.start - (800 + 256)) <= 2

    def test_raises_on_pure_noise(self, config, rng):
        det = PreambleDetector(config, threshold=0.5)
        with pytest.raises(PreambleNotFoundError) as exc:
            det.detect(rng.standard_normal(5000))
        assert exc.value.score < 0.5

    def test_raises_on_short_recording(self, config):
        det = PreambleDetector(config)
        with pytest.raises(PreambleNotFoundError):
            det.detect(np.zeros(10))

    def test_delay_profile_peaks_at_zero_for_clean(self, config):
        det = PreambleDetector(config)
        preamble = build_preamble(config)
        recording = np.concatenate([np.zeros(500), preamble, np.zeros(500)])
        match = det.detect(recording)
        assert np.argmax(match.delay_profile) == 0

    def test_detect_all_finds_two_packets(self, config):
        det = PreambleDetector(config)
        preamble = build_preamble(config)
        recording = np.concatenate(
            [np.zeros(500), preamble, np.zeros(2000), preamble, np.zeros(500)]
        )
        matches = det.detect_all(recording)
        assert len(matches) == 2
        starts = sorted(m.start for m in matches)
        assert starts[0] == 500 + 256
        assert starts[1] == 500 + 256 + 2000 + 256

    def test_threshold_default_from_config(self, config):
        det = PreambleDetector(config)
        assert det.threshold == config.detection_threshold == 0.05


class TestFrameConstruction:
    def test_symbol_length(self, config, plan):
        symbol = modulate_symbol(
            config, plan, np.ones(len(plan.data), dtype=complex)
        )
        assert symbol.size == config.cp_length + config.fft_size + config.symbol_guard

    def test_cyclic_prefix_is_copy_of_tail(self, config, plan):
        symbol = modulate_symbol(
            config, plan, np.ones(len(plan.data), dtype=complex)
        )
        cp = symbol[: config.cp_length]
        body = symbol[config.cp_length: config.cp_length + config.fft_size]
        assert np.allclose(cp, body[-config.cp_length:])

    def test_signal_is_real(self, config, plan):
        symbol = modulate_symbol(
            config, plan, (1 + 1j) * np.ones(len(plan.data))
        )
        assert symbol.dtype == np.float64

    def test_clean_roundtrip_recovers_bins(self, config, plan):
        rng = np.random.default_rng(0)
        data = np.exp(2j * np.pi * rng.uniform(size=len(plan.data)))
        symbol = modulate_symbol(config, plan, data)
        body = symbol[config.cp_length: config.cp_length + config.fft_size]
        spectrum = demodulate_block(config, body)
        # Re(IFFT) construction halves every occupied bin uniformly, so
        # data/pilot ratios are preserved exactly.
        pilots = spectrum[list(plan.pilots)]
        assert np.allclose(pilots, pilots[0])
        recovered = spectrum[sorted(plan.data)] / pilots[0] * PILOT_VALUE
        assert np.allclose(recovered, data, atol=1e-9)

    def test_hermitian_variant_also_real_and_decodable(self, config, plan):
        rng = np.random.default_rng(1)
        data = np.exp(2j * np.pi * rng.uniform(size=len(plan.data)))
        symbol = modulate_symbol(config, plan, data, hermitian=True)
        body = symbol[config.cp_length: config.cp_length + config.fft_size]
        spectrum = demodulate_block(config, body)
        pilots = spectrum[list(plan.pilots)]
        recovered = spectrum[sorted(plan.data)] / pilots[0]
        assert np.allclose(recovered, data, atol=1e-9)

    def test_rejects_wrong_symbol_count(self, config, plan):
        with pytest.raises(ModemError):
            modulate_symbol(config, plan, np.ones(3, dtype=complex))

    def test_demodulate_rejects_short_block(self, config):
        with pytest.raises(ModemError):
            demodulate_block(config, np.zeros(10))


class TestFrameLayout:
    def test_offsets(self, config):
        layout = frame_layout(config, 3)
        offsets = layout.symbol_offsets()
        assert offsets[0] == config.preamble_length + config.guard_length
        stride = config.cp_length + config.fft_size + config.symbol_guard
        assert offsets[1] - offsets[0] == stride
        assert layout.total_length == offsets[-1] + stride

    def test_rejects_zero_symbols(self, config):
        with pytest.raises(ModemError):
            frame_layout(config, 0)

    def test_assemble_frame_structure(self, config, plan):
        preamble = build_preamble(config)
        symbol = modulate_symbol(
            config, plan, np.ones(len(plan.data), dtype=complex)
        )
        frame = assemble_frame(config, preamble, symbol)
        assert frame.size == (
            config.preamble_length + config.guard_length + symbol.size
        )
        guard = frame[config.preamble_length: config.preamble_length
                      + config.guard_length]
        assert np.allclose(guard, 0.0)

    def test_assemble_rejects_wrong_preamble_length(self, config):
        with pytest.raises(ModemError):
            assemble_frame(config, np.zeros(100), np.zeros(500))
