"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import ModemConfig
from repro.core.metrics import TailStats
from repro.dsp.correlation import normalized_cross_correlation
from repro.dsp.energy import amplitude_to_spl, spl_to_amplitude
from repro.dsp.fftops import fft_interpolate
from repro.modem.bits import (
    bit_error_rate,
    pack_bits,
    random_bits,
    unpack_bits,
)
from repro.modem.constellation import CONSTELLATIONS
from repro.modem.subchannels import ChannelPlan
from repro.security.hotp import hotp, hotp_token_bits
from repro.security.tokens import bits_to_token, token_to_bits
from repro.sensors.dtw import dtw_distance


bits_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=200).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestBitProperties:
    @given(bits_arrays)
    def test_pack_unpack_roundtrip(self, bits):
        assert np.array_equal(
            unpack_bits(pack_bits(bits), bits.size), bits
        )

    @given(bits_arrays)
    def test_ber_self_is_zero(self, bits):
        assert bit_error_rate(bits, bits.copy()) == 0.0

    @given(bits_arrays)
    def test_ber_complement_is_one(self, bits):
        assert bit_error_rate(bits, 1 - bits) == 1.0

    @given(bits_arrays, bits_arrays)
    def test_ber_symmetric_same_length(self, a, b):
        n = min(a.size, b.size)
        assume(n > 0)
        assert bit_error_rate(a[:n], b[:n]) == bit_error_rate(b[:n], a[:n])


class TestConstellationProperties:
    @given(
        st.sampled_from(sorted(CONSTELLATIONS)),
        st.integers(1, 50),
        st.integers(0, 2**31 - 1),
    )
    def test_map_demap_roundtrip(self, name, n_symbols, seed):
        c = CONSTELLATIONS[name]
        bits = random_bits(n_symbols * c.bits_per_symbol, rng=seed)
        assert np.array_equal(c.demap(c.map(bits)), bits)

    @given(st.sampled_from(sorted(CONSTELLATIONS)))
    def test_unit_energy(self, name):
        pts = np.asarray(CONSTELLATIONS[name].points)
        assert np.mean(np.abs(pts) ** 2) == pytest.approx(1.0)


class TestTokenProperties:
    @given(st.integers(0, 2**31 - 1))
    def test_token_bits_roundtrip(self, token):
        assert bits_to_token(token_to_bits(token, 31)) == token

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 10_000))
    def test_hotp_in_range(self, key, counter):
        assert 0 <= hotp(key, counter) < 2**31

    @given(
        st.binary(min_size=1, max_size=32),
        st.integers(0, 1000),
        st.integers(1, 31),
    )
    def test_hotp_token_fits_width(self, key, counter, width):
        assert hotp_token_bits(key, counter, width) < 2**width


class TestSplProperties:
    @given(st.floats(min_value=-20.0, max_value=120.0))
    def test_spl_roundtrip(self, spl):
        assert amplitude_to_spl(spl_to_amplitude(spl)) == pytest.approx(spl)

    @given(
        st.floats(min_value=-20.0, max_value=100.0),
        st.floats(min_value=0.1, max_value=40.0),
    )
    def test_spl_monotone(self, spl, delta):
        assert spl_to_amplitude(spl + delta) > spl_to_amplitude(spl)


float_series = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=2,
    max_size=40,
).map(np.asarray)


class TestDtwProperties:
    @given(float_series)
    def test_identity(self, x):
        assert dtw_distance(x, x) == pytest.approx(0.0, abs=1e-9)

    @given(float_series, float_series)
    @settings(deadline=None)
    def test_symmetry(self, a, b):
        assert dtw_distance(a, b) == pytest.approx(
            dtw_distance(b, a), rel=1e-9, abs=1e-9
        )

    @given(float_series, float_series)
    @settings(deadline=None)
    def test_nonnegative(self, a, b):
        assert dtw_distance(a, b) >= 0.0

    @given(float_series, st.floats(min_value=-50, max_value=50))
    def test_shift_invariance_of_cost_lower_bound(self, x, c):
        """DTW(x, x+c) <= |c| * path length (each step costs |c|)."""
        shifted = x + c
        bound = abs(c) * (2 * x.size)
        assert dtw_distance(x, shifted) <= bound + 1e-6


class TestCorrelationProperties:
    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=4,
            max_size=64,
        ).map(np.asarray),
        st.floats(min_value=0.01, max_value=100.0),
    )
    def test_scale_invariance(self, x, scale):
        assume(float(np.dot(x, x)) > 1e-12)
        a = normalized_cross_correlation(x, x * scale)
        assert a == pytest.approx(1.0, abs=1e-6)


class TestFftInterpolateProperties:
    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=2,
            max_size=32,
        ),
        st.integers(2, 6),
    )
    def test_original_samples_preserved(self, values, factor):
        v = np.asarray(values, dtype=complex)
        out = fft_interpolate(v, factor)
        assert out.size == v.size * factor
        assert np.allclose(out[::factor], v, atol=1e-8)


class TestSubchannelSelectionProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(0, 5))
    @settings(deadline=None)
    def test_selection_never_picks_the_noisiest_bins(self, seed, n_jam):
        plan = ChannelPlan.from_config(ModemConfig())
        rng = np.random.default_rng(seed)
        noise = np.ones(129)
        candidates = list(plan.candidate_data_channels())
        jammed = rng.choice(
            candidates, size=min(n_jam, len(candidates)), replace=False
        )
        noise[jammed] = 1e6
        new = plan.select_data_channels(noise)
        assert len(new.data) == len(plan.data)
        # With plenty of clean candidates, jammed bins are never chosen.
        if len(candidates) - len(jammed) >= len(plan.data):
            assert not set(jammed) & set(new.data)


class TestTailStatsProperties:
    """``from_counts`` discretizes the same nearest-rank quantile that
    ``from_values`` reads off the sorted samples, so binning can move
    each percentile by at most half a bin width."""

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.999),
            min_size=1,
            max_size=200,
        ),
        st.integers(1, 64),
    )
    def test_from_counts_within_half_bin_of_from_values(
        self, values, n_bins
    ):
        lo, hi = 0.0, 1.0
        width = (hi - lo) / n_bins
        counts = np.zeros(n_bins, dtype=np.int64)
        for v in values:
            counts[min(int((v - lo) / width), n_bins - 1)] += 1
        exact = TailStats.from_values(values)
        binned = TailStats.from_counts(counts, lo, hi)
        assert binned.n == exact.n == len(values)
        for q in ("p50", "p95", "p99", "p999"):
            assert abs(getattr(binned, q) - getattr(exact, q)) <= (
                width / 2 + 1e-12
            )

    @given(
        st.lists(
            st.floats(min_value=-10.0, max_value=10.0),
            min_size=1,
            max_size=100,
        )
    )
    def test_from_values_percentiles_are_samples(self, values):
        tail = TailStats.from_values(values)
        # Nearest-rank quantiles are always actual observations.
        assert tail.p50 in values
        assert tail.p95 in values
        assert tail.p99 in values
        assert tail.p999 in values
        assert tail.p50 <= tail.p95 <= tail.p99 <= tail.p999
