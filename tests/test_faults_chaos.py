"""Chaos suite: every fault kind against every Fig. 2 stage.

The contract under fault injection is narrow but absolute:

* a faulted session **never raises** — it unlocks (possibly after
  retries) or aborts with a real :class:`~repro.protocol.session.
  AbortReason`;
* the retry loop **never blows the latency budget** by more than one
  attempt's worth of work;
* everything is **deterministic**: the same seed and the same
  :class:`~repro.faults.FaultPlan` give byte-identical outcomes and
  trace timelines, serially or fanned out over workers.
"""

from __future__ import annotations

import pytest

from repro.core.trace import Tracer
from repro.eval.batch import BatchRunner, BatchTask, cell_seed
from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan
from repro.protocol.session import (
    AbortReason,
    RetryPolicy,
    SessionConfig,
    UnlockSession,
)
from repro.protocol.stages import UNLOCK_STAGE_NAMES

#: One attempt's worth of slack on top of the policy's latency budget:
#: the budget gates *starting* a retry, so the last attempt may finish
#: past it, but never by more than its own duration.
ATTEMPT_SLACK_S = 6.0


def run_faulted(
    spec: str,
    seed: int = 7,
    distance_m: float = 0.4,
    retry: bool = True,
    tracer=None,
):
    config = SessionConfig(
        seed=seed,
        distance_m=distance_m,
        faults=spec,
        retry=RetryPolicy() if retry else None,
    )
    return UnlockSession(config).run(tracer=tracer)


class TestChaosMatrix:
    """9 fault kinds x 8 stages, with the recovery loop enabled."""

    @pytest.mark.parametrize("stage", UNLOCK_STAGE_NAMES)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_never_raises_and_resolves(self, kind, stage):
        policy = RetryPolicy()
        outcome = run_faulted(f"{kind}@{stage}:severity=2")
        assert isinstance(outcome.unlocked, bool)
        if outcome.unlocked:
            assert outcome.abort_reason is AbortReason.NONE
        else:
            assert outcome.abort_reason is not AbortReason.NONE
        assert (
            outcome.total_delay_s
            <= policy.latency_budget_s + ATTEMPT_SLACK_S
        )

    @pytest.mark.parametrize("stage", UNLOCK_STAGE_NAMES)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_unbounded_hits_still_terminate(self, kind, stage):
        """Even a fault that fires on *every* hook must terminate."""
        policy = RetryPolicy()
        outcome = run_faulted(f"{kind}@{stage}:severity=3,hits=none")
        assert outcome.abort_reason in AbortReason
        assert (
            outcome.total_delay_s
            <= policy.latency_budget_s + ATTEMPT_SLACK_S
        )

    def test_every_kind_has_a_firing_hook(self):
        """Each fault kind fires in at least one stage of the flow."""
        for kind in FAULT_KINDS:
            fired = 0
            for stage in UNLOCK_STAGE_NAMES:
                outcome = run_faulted(f"{kind}@{stage}:hits=none")
                fired += len(outcome.faults_injected)
            assert fired > 0, f"{kind} never fired in any stage"

    def test_wildcard_stage_covers_the_whole_flow(self):
        outcome = run_faulted("latency_spike@*:hits=none,severity=0.1")
        stages_hit = {
            label.split("@", 1)[1].rsplit("#", 1)[0]
            for label in outcome.faults_injected
        }
        assert stages_hit == {"*"} or len(stages_hit) >= 1
        assert len(outcome.faults_injected) >= len(UNLOCK_STAGE_NAMES)


class TestRecoveryRate:
    """The paper's recovery promise for single-frame corruption."""

    @pytest.mark.parametrize(
        "kind", ["burst_noise", "frame_truncation", "snr_collapse"]
    )
    def test_single_frame_corruption_mostly_recovers(self, kind):
        """>=90% of single-shot OTP-frame corruptions still unlock."""
        n = 20
        unlocked = 0
        needed_retry = 0
        for trial in range(n):
            outcome = run_faulted(
                f"{kind}@otp-tx:severity=2",
                seed=cell_seed(101, kind, trial),
            )
            unlocked += outcome.unlocked
            needed_retry += outcome.recovered
        assert unlocked / n >= 0.9
        # The fault is real: at least some runs needed the retry loop.
        assert needed_retry > 0

    def test_without_retry_the_same_faults_fail(self):
        """Control: the corruption actually breaks unreinforced runs."""
        failures = 0
        for trial in range(10):
            outcome = run_faulted(
                "burst_noise@otp-tx:severity=3",
                seed=cell_seed(202, trial),
                retry=False,
            )
            failures += not outcome.unlocked
        assert failures > 0

    def test_retries_exhausted_under_persistent_fault(self):
        outcome = run_faulted("snr_collapse@otp-tx:severity=4,hits=none")
        assert not outcome.unlocked
        assert outcome.abort_reason is AbortReason.RETRIES_EXHAUSTED
        assert outcome.attempts == RetryPolicy().max_attempts

    def test_total_message_loss_reads_as_dead_link(self):
        outcome = run_faulted("msg_drop@sensor-capture:hits=none")
        assert not outcome.unlocked
        assert outcome.abort_reason is AbortReason.NO_WIRELESS_LINK


def _outcome_fingerprint(outcome):
    """Everything observable about an outcome, minus wall-clock."""
    return (
        outcome.unlocked,
        outcome.abort_reason,
        outcome.mode,
        outcome.raw_ber,
        outcome.psnr_db,
        round(outcome.total_delay_s, 12),
        outcome.stages_run,
        outcome.stopped_by,
        outcome.attempts,
        outcome.reprobes,
        outcome.faults_injected,
        round(outcome.watch_energy_j, 12),
        round(outcome.phone_energy_j, 12),
    )


def _trace_fingerprint(trace):
    """Span timeline with simulated time only.

    Wall-clock fields vary run to run, and the ``plane_cache_*``
    counters instrument a process-global cache whose hit pattern
    depends on what other threads computed first — neither is part of
    the session's deterministic behaviour.
    """
    return tuple(
        (
            s.name,
            s.parent,
            s.status,
            round(s.sim_start_s, 12),
            round(s.sim_end_s, 12),
            tuple(sorted(s.tags.items())),
            tuple(
                sorted(
                    (k, round(v, 12))
                    for k, v in s.counters.items()
                    if not k.startswith("plane_cache")
                )
            ),
        )
        for s in trace.spans
    )


def _chaos_cell(spec: str, seed: int):
    tracer = Tracer()
    outcome = run_faulted(spec, seed=seed, tracer=tracer)
    return (
        _outcome_fingerprint(outcome),
        _trace_fingerprint(outcome.trace),
    )


class TestChaosDeterminism:
    """Same seed + FaultPlan => byte-identical outcome and timeline."""

    SPECS = (
        "burst_noise@otp-tx:severity=2",
        "frame_truncation@otp-tx",
        "msg_drop@otp-tx:p=0.5,hits=none",
        "snr_collapse@probe-tx:severity=2",
        "latency_spike@verify;energy_spike@probe-process",
        # The verifier-stage boundary: drop the watch's sensor message
        # (the fused verifiers must fail closed), and charge spikes at
        # the prefilter so verifier latency/energy annotations absorb
        # injected costs deterministically.
        "msg_drop@prefilter:p=0.5,hits=none",
        "latency_spike@prefilter;energy_spike@prefilter",
    )

    def test_back_to_back_runs_identical(self):
        for spec in self.SPECS:
            assert _chaos_cell(spec, 7) == _chaos_cell(spec, 7), spec

    def test_serial_vs_workers_identical(self):
        tasks = [
            BatchTask(
                key=(spec, trial),
                params=dict(
                    spec=spec, seed=cell_seed(55, spec, trial)
                ),
            )
            for spec in self.SPECS
            for trial in range(3)
        ]
        serial = BatchRunner(_chaos_cell, workers=None).run(tasks)
        fanned = BatchRunner(_chaos_cell, workers=4).run(tasks)
        assert [r.key for r in serial] == [r.key for r in fanned]
        for a, b in zip(serial, fanned):
            assert a.value == b.value, a.key

    def test_different_plans_do_not_perturb_each_other(self):
        """Adding an inert fault leaves the original stream untouched.

        Fault streams are keyed by (index, kind@stage), so a spec that
        never fires must not change what another spec's stream draws.
        """
        alone = _chaos_cell("burst_noise@otp-tx:severity=2", 7)
        padded = _chaos_cell(
            "burst_noise@otp-tx:severity=2;burst_noise@wireless-check", 7
        )
        # Same unlock outcome fields that depend on the acoustic draws.
        assert alone[0][:6] == padded[0][:6]

    def test_fault_free_plan_matches_no_plan(self):
        """An empty/inert plan must not consume any session entropy."""
        base_cfg = SessionConfig(seed=7, retry=RetryPolicy())
        base = UnlockSession(base_cfg).run()
        inert = run_faulted("burst_noise@wireless-check", seed=7)
        assert inert.faults_injected == ()
        assert _outcome_fingerprint(base) == _outcome_fingerprint(inert)


class TestInjectorUnit:
    """Direct FaultInjector behaviours the integration tests lean on."""

    def test_probability_and_hits_respected(self):
        plan = FaultPlan.parse("latency_spike@*:p=0.0,hits=none")
        injector = FaultInjector(plan, seed=3)
        for stage in UNLOCK_STAGE_NAMES:
            injector.enter_stage(stage)
            assert injector.stage_spikes() == []
        assert injector.injected == 0

        plan = FaultPlan.parse("latency_spike@*:hits=2")
        injector = FaultInjector(plan, seed=3)
        fired = 0
        for stage in UNLOCK_STAGE_NAMES:
            injector.enter_stage(stage)
            fired += len(injector.stage_spikes())
        assert fired == 2

    def test_spec_roundtrip_through_describe(self):
        text = "burst_noise@otp-tx:p=0.5,severity=2;msg_drop@*"
        plan = FaultPlan.parse(text)
        again = FaultPlan.parse(plan.describe())
        assert plan == again

    def test_observer_sees_every_event(self):
        seen = []
        plan = FaultPlan.parse("latency_spike@*:hits=none")
        injector = FaultInjector(plan, seed=3, observer=seen.append)
        for stage in UNLOCK_STAGE_NAMES:
            injector.enter_stage(stage)
            injector.stage_spikes()
        assert len(seen) == len(UNLOCK_STAGE_NAMES)
        assert seen == injector.events


class TestStagedFleetUnderFaults:
    """Fault injection against the fleet's staged OTP fast path.

    The wave-batched Phase-2 replay cannot reproduce a fault plan's
    cross-stage draw sequencing, so ``staging="otp"`` must *degrade*
    (to DTW-only staging, see :func:`repro.fleet.executor.
    effective_staging`) rather than stage wrongly or raise — and the
    degraded run must stay byte-identical to a fully live one.
    """

    @pytest.mark.parametrize("stage", ("otp-tx", "verify"))
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_staged_shard_never_raises_and_matches_live(self, kind, stage):
        from repro.fleet import FleetConfig, run_shard

        cfg = FleetConfig(
            n_users=3, hours=24.0, seed=11,
            faults=f"{kind}@{stage}:p=0.5,hits=none",
        )
        live = run_shard(cfg, 0, 3, staging="none")
        staged = run_shard(cfg, 0, 3, staging="otp")
        assert staged == live

    def test_acoustic_levels_degrade_only_when_faulted(self):
        from repro.fleet.executor import effective_staging

        for level in ("probe", "otp"):
            assert effective_staging(level, faulted=True) == "dtw"
            assert effective_staging(level, faulted=False) == level
        for level in ("none", "dtw"):
            assert effective_staging(level, faulted=True) == level

    def test_faulted_scheduler_worker_invariance(self):
        """Degradation must not break the worker-count contract."""
        import json

        from repro.fleet import FleetConfig, FleetScheduler

        cfg = FleetConfig(
            n_users=4, hours=24.0, seed=11,
            faults="snr_collapse@otp-tx:severity=2,hits=none",
        )

        def doc(workers, shard_users):
            result = FleetScheduler(
                cfg, workers=workers, shard_users=shard_users,
                staging="otp",
            ).run()
            return json.dumps(
                result.aggregate.to_dict(hours=cfg.hours),
                sort_keys=True, indent=2,
            )

        assert doc(1, 4) == doc(4, 1)
