"""Tests for trace synthesis, DTW and the Alg. 1 motion filter."""

import numpy as np
import pytest

from repro.config import MotionFilterConfig
from repro.errors import WearLockError
from repro.sensors.dtw import dtw_distance, normalized_dtw
from repro.sensors.motion_filter import MotionDecision, MotionFilter
from repro.sensors.traces import (
    GRAVITY,
    ActivityKind,
    accelerometer_trace,
    co_located_pair,
    different_devices_pair,
    magnitude,
    normalize_trace,
)


class TestTraces:
    def test_shape(self):
        t = accelerometer_trace(ActivityKind.WALKING, 120, rng=0)
        assert t.shape == (120, 3)

    def test_magnitude_near_gravity_when_sitting(self):
        t = accelerometer_trace(ActivityKind.SITTING, 200, rng=1)
        m = magnitude(t)
        assert np.median(m) == pytest.approx(GRAVITY, rel=0.2)

    def test_jogging_more_energetic_than_sitting(self):
        rng = np.random.default_rng(2)
        sit = magnitude(accelerometer_trace(ActivityKind.SITTING, 200, rng=rng))
        jog = magnitude(accelerometer_trace(ActivityKind.JOGGING, 200, rng=rng))
        assert np.std(jog) > 2 * np.std(sit)

    def test_walking_has_gait_periodicity(self):
        rng = np.random.default_rng(3)
        m = magnitude(
            accelerometer_trace(ActivityKind.WALKING, 400, 50.0, rng=rng)
        )
        m = m - np.mean(m)
        spec = np.abs(np.fft.rfft(m))
        freqs = np.fft.rfftfreq(m.size, 1 / 50.0)
        peak = freqs[1 + np.argmax(spec[1:])]
        assert 1.0 < peak < 6.5  # gait fundamental or harmonic

    def test_magnitude_rejects_bad_shape(self):
        with pytest.raises(WearLockError):
            magnitude(np.ones((10, 2)))

    def test_normalize_trace(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        n = normalize_trace(x)
        assert np.mean(n) == pytest.approx(0.0, abs=1e-12)
        assert np.std(n) == pytest.approx(1.0)

    def test_normalize_constant_gives_zeros(self):
        assert np.all(normalize_trace(np.full(10, 5.0)) == 0.0)

    def test_pairs_have_requested_length(self):
        p, w = co_located_pair(ActivityKind.WALKING, n_samples=80, rng=4)
        assert p.shape == (80, 3) and w.shape == (80, 3)


class TestDtw:
    def test_identical_series_zero_distance(self):
        x = np.sin(np.linspace(0, 10, 50))
        assert dtw_distance(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_shifted_series_small_distance(self):
        t = np.linspace(0, 10, 100)
        a = np.sin(t)
        b = np.sin(t - 0.3)
        shifted = dtw_distance(a, b)
        euclidean = float(np.sum(np.abs(a - b)))
        assert shifted < euclidean  # warping absorbs the lag

    def test_symmetry(self):
        rng = np.random.default_rng(5)
        a, b = rng.standard_normal(40), rng.standard_normal(35)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_nonnegative(self):
        rng = np.random.default_rng(6)
        assert dtw_distance(rng.standard_normal(30), rng.standard_normal(30)) >= 0

    def test_band_constraint_matches_unconstrained_for_aligned(self):
        x = np.sin(np.linspace(0, 10, 64))
        assert dtw_distance(x, x, band=2) == pytest.approx(0.0, abs=1e-12)

    def test_band_never_below_unconstrained(self):
        rng = np.random.default_rng(7)
        a, b = rng.standard_normal(50), rng.standard_normal(50)
        assert dtw_distance(a, b, band=3) >= dtw_distance(a, b) - 1e-9

    def test_rejects_empty(self):
        with pytest.raises(WearLockError):
            dtw_distance(np.zeros(0), np.ones(5))

    def test_normalized_score_scale_invariant(self):
        rng = np.random.default_rng(8)
        a, b = rng.standard_normal(60), rng.standard_normal(60)
        assert normalized_dtw(a, b) == pytest.approx(
            normalized_dtw(10 * a, 0.1 * b)
        )


class TestMotionFilterTableII:
    """Reproduces the shape of the paper's Table II."""

    def _mean_score(self, pair_fn, n=12, seed=0):
        rng = np.random.default_rng(seed)
        mf = MotionFilter()
        return float(
            np.mean([mf.score(*pair_fn(rng)) for _ in range(n)])
        )

    def test_co_located_scores_low(self):
        for kind in ActivityKind:
            score = self._mean_score(
                lambda rng, k=kind: co_located_pair(k, rng=rng)
            )
            assert score < 0.12, kind

    def test_different_bodies_score_high(self):
        score = self._mean_score(
            lambda rng: different_devices_pair(ActivityKind.WALKING, rng=rng)
        )
        assert score > 0.15

    def test_separation_factor(self):
        """Paper: different ≈ 0.20 vs co-located ≈ 0.02-0.06 — at least
        a factor of two of separation must hold."""
        co = self._mean_score(
            lambda rng: co_located_pair(ActivityKind.WALKING, rng=rng)
        )
        diff = self._mean_score(
            lambda rng: different_devices_pair(ActivityKind.WALKING, rng=rng)
        )
        assert diff > 2.0 * co

    def test_decisions(self):
        mf = MotionFilter(MotionFilterConfig(dtw_low=0.1, dtw_high=0.15))
        rng = np.random.default_rng(9)
        co_decisions = [
            mf.evaluate(*co_located_pair(ActivityKind.WALKING, rng=rng)).decision
            for _ in range(10)
        ]
        assert MotionDecision.ABORT not in co_decisions
        diff_decisions = [
            mf.evaluate(
                *different_devices_pair(ActivityKind.WALKING, rng=rng)
            ).decision
            for _ in range(10)
        ]
        assert diff_decisions.count(MotionDecision.ABORT) >= 5

    def test_fast_path_on_near_identical_motion(self):
        mf = MotionFilter()
        rng = np.random.default_rng(10)
        p, w = co_located_pair(
            ActivityKind.WALKING, device_noise=0.02, lag_samples=0, rng=rng
        )
        report = mf.evaluate(p, w)
        assert report.decision is MotionDecision.FAST_PATH
