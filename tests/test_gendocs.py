"""gendocs: API reference generation, staleness check, docstring lint."""

from __future__ import annotations

from pathlib import Path

from repro.tools.gendocs import (
    default_output_path,
    iter_module_names,
    lint_api_coverage,
    lint_module_docstrings,
    main,
    module_entries,
    render_api_markdown,
)


class TestModuleDiscovery:
    def test_covers_known_modules(self):
        names = list(iter_module_names())
        assert "repro" in names
        assert "repro.fleet.scheduler" in names
        assert "repro.sensors.dtw" in names
        assert names == sorted(names)

    def test_excludes_entry_points(self):
        # Importing repro.__main__ would sys.exit(); it must be skipped.
        assert all(
            not n.endswith("__main__") for n in iter_module_names()
        )


class TestRendering:
    def test_entries_use_all_when_declared(self):
        doc_line, entries = module_entries("repro.fleet")
        assert doc_line
        names = [n for n, _, _ in entries]
        assert "FleetScheduler" in names
        assert "FleetConfig" in names

    def test_render_is_deterministic(self):
        assert render_api_markdown() == render_api_markdown()

    def test_render_mentions_every_module(self):
        text = render_api_markdown()
        for name in iter_module_names():
            assert f"## `{name}`" in text


class TestCliModes:
    def test_lint_passes_on_this_repo(self):
        assert lint_module_docstrings() == []
        assert main(["--lint"]) == 0

    def test_committed_api_md_is_fresh(self):
        """CI's gendocs --check, as a unit test: the committed file
        must match a regeneration exactly."""
        committed = default_output_path()
        assert committed.exists(), "docs/API.md missing — run gendocs"
        assert committed.read_text() == render_api_markdown()

    def test_check_detects_staleness(self, tmp_path: Path):
        stale = tmp_path / "API.md"
        stale.write_text("# stale\n")
        assert main(["--check", "--out", str(stale)]) == 1
        assert main(["--out", str(stale)]) == 0
        assert main(["--check", "--out", str(stale)]) == 0


class TestApiCoverageLint:
    def test_committed_api_md_covers_every_module(self):
        assert lint_api_coverage() == []

    def test_flags_modules_missing_from_a_stale_file(self, tmp_path: Path):
        partial = tmp_path / "API.md"
        # A file predating the trials package entirely.
        partial.write_text("# API reference\n\n## `repro`\n")
        missing = lint_api_coverage(partial)
        assert "repro.trials" in missing
        assert "repro.trials.judges" in missing
        assert "repro" not in missing

    def test_lint_mode_fails_on_uncovered_file(self, tmp_path: Path):
        partial = tmp_path / "API.md"
        partial.write_text("# API reference\n")
        assert main(["--lint", "--out", str(partial)]) == 1
        assert main(["--out", str(partial)]) == 0
        assert main(["--lint", "--out", str(partial)]) == 0
