"""Edge-case and failure-injection tests for the unlock session."""

import numpy as np
import pytest

from repro.config import SecurityConfig, SystemConfig
from repro.modem.coding import ConvolutionalCode, HammingCode
from repro.protocol.controllers import PhoneController
from repro.protocol.session import (
    AbortReason,
    SessionConfig,
    UnlockSession,
)
from repro.security.otp import OtpManager
from repro.sensors.traces import ActivityKind


class TestWirelessGate:
    def test_no_bluetooth_aborts_immediately(self):
        """Paper §V: no Bluetooth link → no protocol, no DSP at all."""
        cfg = SessionConfig(
            environment="office", wireless_connected=False, seed=1
        )
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run()
        assert not outcome.unlocked
        assert outcome.abort_reason is AbortReason.NO_WIRELESS_LINK
        # Only the button-press stack delay was spent.
        assert outcome.total_delay_s < 0.2
        assert outcome.watch_energy_j == 0.0


class TestNlosRelaxation:
    def _blocked_cfg(self, **overrides):
        base = dict(
            environment="classroom",
            distance_m=0.25,
            los=False,
            nlos_blocking_db=8.0,
            use_motion_filter=False,
            use_noise_filter=False,
        )
        base.update(overrides)
        return SessionConfig(**base)

    def test_blocked_sessions_partially_survive(self):
        """Mild body blocking degrades but does not kill the protocol,
        and the NLOS detector fires on a fraction of attempts (the
        case study observed 3/10)."""
        successes = 0
        nlos_seen = 0
        for i in range(8):
            cfg = self._blocked_cfg(seed=50 + i)
            outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run(
                rng=np.random.default_rng(700 + i)
            )
            nlos_seen += bool(outcome.nlos)
            successes += outcome.unlocked
        assert successes >= 3
        assert nlos_seen >= 1

    def test_heavy_blocking_defeats_unlock(self):
        """Severe blocking (the covered-speaker grip) mostly fails —
        the co-located-attacker self-defeat property."""
        successes = 0
        for i in range(6):
            cfg = self._blocked_cfg(nlos_blocking_db=26.0, seed=70 + i)
            outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run(
                rng=np.random.default_rng(750 + i)
            )
            successes += outcome.unlocked
        assert successes <= 2


class TestCodedSessions:
    @pytest.mark.parametrize(
        "code", [ConvolutionalCode(), HammingCode()],
        ids=["conv-k7", "hamming74"],
    )
    def test_alternative_codes_unlock(self, code):
        # Hamming(7,4) only corrects one error per block, so give it
        # the quiet room; the Viterbi code handles the office too.
        otp = OtpManager(b"k")
        cfg = SessionConfig(
            environment="quiet_room", distance_m=0.3, seed=9
        )
        phone = PhoneController(cfg.system, otp, code=code)
        outcome = UnlockSession(cfg, otp=otp, phone=phone).run(
            rng=np.random.default_rng(800)
        )
        assert outcome.unlocked

    def test_conv_code_shortens_airtime_vs_repetition(self):
        """conv-k7 (rate 1/2) needs fewer coded bits than 5x repetition
        for the same 31-bit token → a shorter Phase 2."""
        otp_a = OtpManager(b"k")
        otp_b = OtpManager(b"k")
        system = SystemConfig()
        rep = PhoneController(system, otp_a, repetition=5)
        conv = PhoneController(system, otp_b, code=ConvolutionalCode())
        d_rep = rep.modulator.select(40.0, 0.1)
        d_conv = conv.modulator.select(40.0, 0.1)
        tt_rep = rep.prepare_token(d_rep, None, 75.0)
        tt_conv = conv.prepare_token(d_conv, None, 75.0)
        assert tt_conv.coded_bits < tt_rep.coded_bits
        assert tt_conv.result.waveform.size < tt_rep.result.waveform.size


class TestLockoutThroughSessions:
    def _bad_channel_outcome(self, otp, phone, seed):
        """A channel bad enough to corrupt the token beyond repair but
        often good enough to demodulate *something*."""
        cfg = SessionConfig(
            environment="grocery_store",
            distance_m=3.0,
            use_motion_filter=False,
            use_noise_filter=False,
            use_nlos_check=False,
            seed=seed,
        )
        return UnlockSession(cfg, otp=otp, phone=phone).run(
            rng=np.random.default_rng(seed)
        )

    def test_failed_tokens_accumulate_toward_lockout(self):
        system = SystemConfig(security=SecurityConfig(max_failures=3))
        otp = OtpManager(b"key", config=system.security)
        phone = PhoneController(system, otp)
        rejections = 0
        for i in range(12):
            if otp.locked_out:
                break
            outcome = self._bad_channel_outcome(otp, phone, 910 + i)
            assert not outcome.unlocked
            if outcome.abort_reason is AbortReason.TOKEN_REJECTED:
                rejections += 1
        # Every completed transmission on this channel fails the token
        # check; rejected tokens count toward the keyguard policy.
        if rejections:
            assert phone.keyguard.failures > 0 or otp.locked_out

    def test_token_rejection_recorded_with_ber(self):
        system = SystemConfig()
        otp = OtpManager(b"key")
        phone = PhoneController(system, otp)
        for i in range(10):
            outcome = self._bad_channel_outcome(otp, phone, 930 + i)
            if outcome.abort_reason is AbortReason.TOKEN_REJECTED:
                assert outcome.raw_ber is not None
                assert outcome.raw_ber > 0.1
                break
            if otp.locked_out:
                break


class TestFilterToggles:
    def test_disabling_filters_skips_their_events(self):
        cfg = SessionConfig(
            environment="office",
            use_motion_filter=False,
            use_noise_filter=False,
            seed=13,
        )
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run()
        labels = [e.label for e in outcome.timeline.events]
        assert not any("dtw" in l for l in labels)
        assert outcome.motion_score is None
        assert outcome.noise_similarity is None

    def test_activity_affects_motion_scores_not_success(self):
        for activity in ActivityKind:
            cfg = SessionConfig(
                environment="office", activity=activity, seed=14
            )
            outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run(
                rng=np.random.default_rng(950)
            )
            assert outcome.motion_score is not None
            assert outcome.motion_score < 0.15, activity


class TestEvalExperimentSmokes:
    """Cheap-parameter smokes of the experiment harness functions."""

    def test_fig4_shape(self):
        from repro.eval.experiments import fig4_propagation

        result = fig4_propagation(
            distances=(0.5, 1.0), volume_steps=(10,), n_trials=1
        )
        assert len(result["rows"]) == 2
        assert result["rows"][0]["measured_spl"] > result["rows"][1][
            "measured_spl"
        ]

    def test_fig10_shape(self):
        from repro.eval.experiments import fig10_compute_delay

        result = fig10_compute_delay()
        assert len(result["rows"]) == 9

    def test_fig11_shape(self):
        from repro.eval.experiments import fig11_comm_delay

        result = fig11_comm_delay(n_trials=5)
        assert result["wifi"]["file_ms"] < result["bluetooth"]["file_ms"]

    def test_table2_shape(self):
        from repro.eval.experiments import table2_dtw

        result = table2_dtw(n_trials=4)
        assert set(result["scores"]) == {
            "sitting", "walking", "jogging", "different"
        }

    def test_band_noise_spl_ultrasound_below_broadband(self):
        from repro.channel.hardware import MicrophoneModel
        from repro.channel.scenarios import get_environment
        from repro.config import ModemConfig
        from repro.eval.experiments import band_noise_spl

        env = get_environment("office")
        us = ModemConfig().near_ultrasound()
        in_band = band_noise_spl(
            env, us, MicrophoneModel.wide_band(us.sample_rate)
        )
        assert in_band < env.noise.effective_spl() - 8.0
