"""RFC 4226 conformance tests for the HOTP implementation.

The test vectors come straight from RFC 4226 Appendix D: secret
``"12345678901234567890"`` (ASCII), counters 0-9.
"""

import hashlib
import hmac
import struct

import pytest

from repro.errors import SecurityError
from repro.security.hotp import (
    dynamic_truncation,
    hotp,
    hotp_digits,
    hotp_token_bits,
)

RFC_SECRET = b"12345678901234567890"

#: RFC 4226 Appendix D: truncated (31-bit) decimal values per counter.
RFC_TRUNCATED = [
    1284755224,
    1094287082,
    137359152,
    1726969429,
    1640338314,
    868254676,
    1918287922,
    82162583,
    673399871,
    645520489,
]

#: RFC 4226 Appendix D: 6-digit HOTP values per counter.
RFC_HOTP6 = [
    "755224", "287082", "359152", "969429", "338314",
    "254676", "287922", "162583", "399871", "520489",
]


class TestRfc4226Vectors:
    @pytest.mark.parametrize("counter", range(10))
    def test_truncated_values(self, counter):
        assert hotp(RFC_SECRET, counter) == RFC_TRUNCATED[counter]

    @pytest.mark.parametrize("counter", range(10))
    def test_six_digit_values(self, counter):
        assert hotp_digits(RFC_SECRET, counter, 6) == RFC_HOTP6[counter]

    def test_dynamic_truncation_of_rfc_example_digest(self):
        # RFC 4226 §5.4 example digest for counter=0 is the HMAC of the
        # secret; recompute and check DT matches the table.
        digest = hmac.new(
            RFC_SECRET, struct.pack(">Q", 0), hashlib.sha1
        ).digest()
        assert dynamic_truncation(digest) == RFC_TRUNCATED[0]


class TestHotpProperties:
    def test_different_counters_differ(self):
        values = {hotp(b"key", c) for c in range(50)}
        assert len(values) == 50

    def test_different_keys_differ(self):
        assert hotp(b"key-a", 0) != hotp(b"key-b", 0)

    def test_deterministic(self):
        assert hotp(b"key", 123) == hotp(b"key", 123)

    def test_result_fits_31_bits(self):
        for c in range(100):
            assert 0 <= hotp(b"key", c) < 2**31

    def test_token_bits_truncation(self):
        full = hotp(b"key", 5)
        assert hotp_token_bits(b"key", 5, 16) == full & 0xFFFF
        assert hotp_token_bits(b"key", 5, 31) == full

    def test_rejects_empty_key(self):
        with pytest.raises(SecurityError):
            hotp(b"", 0)

    def test_rejects_negative_counter(self):
        with pytest.raises(SecurityError):
            hotp(b"key", -1)

    def test_digits_range_enforced(self):
        with pytest.raises(SecurityError):
            hotp_digits(b"key", 0, digits=4)
        with pytest.raises(SecurityError):
            hotp_digits(b"key", 0, digits=10)

    def test_token_bits_range_enforced(self):
        with pytest.raises(SecurityError):
            hotp_token_bits(b"key", 0, 0)
        with pytest.raises(SecurityError):
            hotp_token_bits(b"key", 0, 32)

    def test_dynamic_truncation_needs_20_bytes(self):
        with pytest.raises(SecurityError):
            dynamic_truncation(b"short")
