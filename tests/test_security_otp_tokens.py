"""Tests for the OTP manager lifecycle and token framing."""

import numpy as np
import pytest

from repro.config import SecurityConfig
from repro.errors import LockedOutError, SecurityError
from repro.security.hotp import hotp_token_bits
from repro.security.otp import OtpManager
from repro.security.tokens import bits_to_token, token_to_bits

KEY = b"test-pairing-key"


class TestOtpManager:
    def test_generate_verify_roundtrip(self):
        mgr = OtpManager(KEY)
        token = mgr.generate()
        result = mgr.verify(token)
        assert result.ok
        assert result.matched_counter == 0
        assert mgr.counter == 1

    def test_counter_advances_past_match(self):
        mgr = OtpManager(KEY)
        for expected in range(5):
            token = mgr.generate()
            result = mgr.verify(token)
            assert result.matched_counter == expected

    def test_look_ahead_window_heals_drift(self):
        mgr = OtpManager(KEY, SecurityConfig(counter_look_ahead=3))
        # The phone advanced two counters past the verifier (aborted
        # attempts); the verifier still matches within the window.
        drifted = hotp_token_bits(KEY, 2, mgr.token_bits)
        result = mgr.verify(drifted)
        assert result.ok
        assert result.matched_counter == 2
        assert mgr.counter == 3

    def test_beyond_window_fails(self):
        mgr = OtpManager(KEY, SecurityConfig(counter_look_ahead=2))
        too_far = hotp_token_bits(KEY, 10, mgr.token_bits)
        assert not mgr.verify(too_far).ok

    def test_replayed_token_rejected(self):
        """A verified token must never verify again (OTP freshness)."""
        mgr = OtpManager(KEY)
        token = mgr.generate()
        assert mgr.verify(token).ok
        assert not mgr.verify(token).ok

    def test_three_strikes_locks_out(self):
        mgr = OtpManager(KEY, SecurityConfig(max_failures=3))
        for i in range(3):
            result = mgr.verify(0xDEAD + i)
        assert result.locked_out
        assert mgr.locked_out
        with pytest.raises(LockedOutError):
            mgr.verify(0)
        with pytest.raises(LockedOutError):
            mgr.generate()

    def test_success_resets_failures(self):
        mgr = OtpManager(KEY)
        mgr.verify(123456)  # fail once
        assert mgr.failures == 1
        assert mgr.verify(mgr.generate()).ok
        assert mgr.failures == 0

    def test_pin_unlock_clears_lockout(self):
        mgr = OtpManager(KEY, SecurityConfig(max_failures=1))
        mgr.verify(1)
        assert mgr.locked_out
        mgr.unlock_with_pin()
        assert not mgr.locked_out
        assert mgr.verify(mgr.generate()).ok

    def test_resync(self):
        mgr = OtpManager(KEY)
        mgr.resync(100)
        assert mgr.counter == 100
        token = hotp_token_bits(KEY, 100, mgr.token_bits)
        assert mgr.verify(token).ok

    def test_token_bits_capped_at_31(self):
        mgr = OtpManager(KEY, SecurityConfig(otp_bits=32))
        assert mgr.token_bits == 31

    def test_rejects_empty_key(self):
        with pytest.raises(SecurityError):
            OtpManager(b"")


class TestTokenFraming:
    def test_roundtrip(self):
        for token in (0, 1, 0x7FFFFFFF, 12345678):
            bits = token_to_bits(token, 31)
            assert bits_to_token(bits) == token

    def test_msb_first(self):
        bits = token_to_bits(0b101, 4)
        assert bits.tolist() == [0, 1, 0, 1]

    def test_width_enforced(self):
        with pytest.raises(SecurityError):
            token_to_bits(16, 4)

    def test_rejects_negative(self):
        with pytest.raises(SecurityError):
            token_to_bits(-1, 8)

    def test_rejects_non_binary_bits(self):
        with pytest.raises(SecurityError):
            bits_to_token(np.array([0, 1, 2]))

    def test_rejects_empty_bits(self):
        with pytest.raises(SecurityError):
            bits_to_token(np.zeros(0))
