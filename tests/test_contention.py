"""Shared-channel contention kernel: scene purity, CSMA determinism,
the zero-density reduction, abort→keyguard coupling — plus the
satellite hardening (Histogram.from_dict validation, the stats None
convention, P999 tails, similarity clamping)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.colocation import AmbientComparator
from repro.core.metrics import BerStats, DelayStats, TailStats
from repro.errors import ConfigurationError, WearLockError
from repro.fleet import (
    FleetAggregate,
    FleetConfig,
    FleetScheduler,
    Histogram,
    build_contention_plan,
    build_population,
    render_fleet_report,
    run_shard,
    scene_of,
    user_sessions,
)
from repro.fleet.aggregate import density_bucket
from repro.fleet.events import (
    MAX_BACKOFFS,
    SceneAnnotation,
    scene_slots,
)
from repro.protocol.session import AbortReason

# Small but genuinely contended: 16 users packed into few scenes, a
# whole day so the daytime public environments actually appear (before
# 08:00 everyone is in their private quiet_room and nothing contends).
CONTENDED = FleetConfig(
    n_users=16,
    hours=24.0,
    seed=7,
    sessions_per_day=10.0,
    scene_density=20.0,
)


def _specs_by_key(config):
    return {
        (s.user_id, s.session_index): s
        for u in build_population(config)
        for s in user_sessions(config, u)
    }


def _doc(result):
    return json.dumps(
        result.aggregate.to_dict(hours=result.config.hours),
        sort_keys=True,
        indent=2,
    )


class TestScenes:
    def test_private_environment_has_no_scene(self):
        assert scene_slots(CONTENDED, "quiet_room") == 0
        assert scene_of(CONTENDED, "quiet_room", 0) is None

    def test_assignment_is_pure_and_in_range(self):
        n = scene_slots(CONTENDED, "office")
        assert n >= 1
        for uid in range(CONTENDED.n_users):
            slot = scene_of(CONTENDED, "office", uid)
            assert slot == scene_of(CONTENDED, "office", uid)
            assert 0 <= slot < n

    def test_crowding_packs_denser_environments(self):
        # cafe crowding (2.0) > grocery (0.75): same config, fewer
        # (therefore fuller) cafe scenes.
        cfg = FleetConfig(n_users=100, seed=0, scene_density=5.0)
        assert scene_slots(cfg, "cafe") <= scene_slots(cfg, "grocery_store")


class TestContentionPlan:
    def test_zero_density_plan_is_empty(self):
        cfg = FleetConfig(n_users=8, hours=24.0, seed=7)
        assert build_contention_plan(cfg).annotations == {}

    def test_negative_density_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(n_users=8, scene_density=-1.0)

    def test_plan_is_deterministic(self):
        a = build_contention_plan(CONTENDED)
        b = build_contention_plan(CONTENDED)
        assert a.annotations == b.annotations

    def test_plan_covers_exactly_the_public_sessions(self):
        plan = build_contention_plan(CONTENDED)
        specs = _specs_by_key(CONTENDED)
        public = {
            k for k, s in specs.items() if s.environment != "quiet_room"
        }
        assert set(plan.annotations) == public

    def test_backoffs_bounded_and_aborts_consistent(self):
        plan = build_contention_plan(CONTENDED)
        assert any(a.backoffs > 0 for a in plan.annotations.values())
        for ann in plan.annotations.values():
            assert 0 <= ann.backoffs <= MAX_BACKOFFS
            assert ann.backoff_delay_s >= 0.0
            assert ann.noise_penalty_db >= 0.0
            if ann.aborted:
                assert ann.backoffs == MAX_BACKOFFS

    def test_backoffs_scale_with_density(self):
        def total_backoffs(density):
            # Plan-only (never executed), so a busy population is cheap;
            # collisions need arrival *rate*, not just scene membership.
            cfg = FleetConfig(
                n_users=40,
                hours=24.0,
                seed=7,
                sessions_per_day=60.0,
                scene_density=density,
            )
            plan = build_contention_plan(cfg)
            return sum(a.backoffs for a in plan.annotations.values())

        assert total_backoffs(2.0) < total_backoffs(40.0)

    def test_shard_slices_partition_the_plan(self):
        plan = build_contention_plan(CONTENDED)
        merged = {}
        for lo in range(0, CONTENDED.n_users, 5):
            merged.update(
                plan.for_user_range(lo, min(lo + 5, CONTENDED.n_users))
            )
        assert merged == plan.annotations


class TestContendedFleetRun:
    def test_worker_shard_and_staging_invariance(self):
        """The headline contract survives contention: byte-identical
        aggregates for any worker count, shard size, staging level."""
        base = FleetScheduler(
            CONTENDED, workers=1, shard_users=5, staging="otp"
        ).run()
        pooled = FleetScheduler(
            CONTENDED, workers=2, shard_users=3, staging="otp"
        ).run()
        live = FleetScheduler(
            CONTENDED, workers=1, shard_users=16, staging="none"
        ).run()
        assert _doc(base) == _doc(pooled) == _doc(live)
        doc = base.aggregate.to_dict(hours=CONTENDED.hours)
        assert doc["backoffs"] > 0  # the kernel actually engaged
        assert doc["per_scene_density"]

    def test_zero_density_reduces_to_legacy(self):
        cfg = FleetConfig(n_users=8, hours=24.0, seed=7)
        records = run_shard(cfg, 0, cfg.n_users)
        assert all(r.scene_members == 0 for r in records)
        assert all(r.backoffs == 0 for r in records)
        doc = FleetAggregate().merge_records(records).to_dict()
        assert doc["per_scene_density"] == {}
        assert doc["backoffs"] == 0

    def test_contention_abort_strikes_keyguard(self):
        """Three starved probes are three failed trusted attempts: the
        keyguard's three-strike rule must force the next session to a
        PIN fallback, exactly as for any other failure mode."""
        cfg = FleetConfig(
            n_users=4, hours=24.0, seed=7, sessions_per_day=10.0,
            scene_density=20.0,
        )
        uid = next(
            u.user_id
            for u in build_population(cfg)
            if len(user_sessions(cfg, u)) >= 4
        )
        spec_map = _specs_by_key(cfg)
        contention = {
            (uid, idx): SceneAnnotation(
                environment=spec_map[(uid, idx)].environment,
                slot=0,
                members=30,
                backoffs=MAX_BACKOFFS if idx < 3 else 0,
                backoff_delay_s=2.5 if idx < 3 else 0.0,
                noise_penalty_db=6.0 if idx < 3 else 0.0,
                # Session 3 keeps its scene identity (annotated, not
                # aborted) so its PIN fallback lands in the bucket.
                aborted=idx < 3,
            )
            for idx in range(4)
        }
        records = run_shard(cfg, uid, uid + 1, contention=contention)
        by_idx = {r.session_index: r for r in records}
        for idx in range(3):
            rec = by_idx[idx]
            assert not rec.unlocked
            assert rec.abort_reason == AbortReason.CHANNEL_CONTENTION.value
            assert rec.delay_s == pytest.approx(2.5)
            assert rec.scene_members == 30
        assert by_idx[3].pin_fallback

        agg = FleetAggregate().merge_records(records)
        doc = agg.to_dict()
        assert doc["abort_reasons"][AbortReason.CHANNEL_CONTENTION.value] == 3
        dense = doc["per_scene_density"][density_bucket(30)]
        assert dense["contention_aborts"] == 3
        assert dense["lockout_rate"] > 0.0

    def test_report_renders_contention_section(self):
        result = FleetScheduler(CONTENDED, workers=1).run()
        text = render_fleet_report(
            result.aggregate.to_dict(hours=CONTENDED.hours)
        )
        assert "## Contention by scene density" in text
        assert "backoffs/session" in text


class TestHistogramFromDictValidation:
    def _doc(self):
        h = Histogram(0.0, 1.0, 10)
        for v in (0.05, 0.95):
            h.add(v)
        return h.to_dict()

    def test_out_of_range_index_rejected(self):
        doc = self._doc()
        doc["counts"]["10"] = 1
        with pytest.raises(ConfigurationError):
            Histogram.from_dict(doc)

    def test_negative_index_rejected(self):
        """A negative key must not wrap around and silently corrupt
        another bin's count (the numpy negative-index trap)."""
        doc = self._doc()
        doc["counts"]["-1"] = 7
        with pytest.raises(ConfigurationError):
            Histogram.from_dict(doc)

    def test_non_integer_index_rejected(self):
        doc = self._doc()
        doc["counts"]["p95"] = 1
        with pytest.raises(ConfigurationError):
            Histogram.from_dict(doc)

    def test_negative_count_rejected(self):
        doc = self._doc()
        doc["counts"]["0"] = -3
        with pytest.raises(ConfigurationError):
            Histogram.from_dict(doc)

    def test_valid_roundtrip_still_exact(self):
        h = Histogram(0.0, 1.0, 10)
        for v in (0.05, 0.95, 0.95, 2.0, -1.0):
            h.add(v)
        again = Histogram.from_dict(h.to_dict())
        assert np.array_equal(again.counts, h.counts)
        assert again.underflow == h.underflow
        assert again.overflow == h.overflow
        assert again.to_dict() == h.to_dict()


class TestStatsNoneConvention:
    """All ``from_values`` constructors share one convention: ``None``
    means "not measured" and is dropped, an all-``None`` stream raises."""

    def test_delay_stats_skips_none(self):
        stats = DelayStats.from_values([1.0, None, 3.0])
        assert stats.n == 2
        assert stats.mean == pytest.approx(2.0)

    def test_delay_stats_rejects_all_none(self):
        with pytest.raises(WearLockError):
            DelayStats.from_values([None, None])

    def test_ber_and_tail_agree_with_delay(self):
        for ctor in (BerStats.from_values, TailStats.from_values):
            assert ctor([0.5, None]).n == 1
            with pytest.raises(WearLockError):
                ctor([None])


class TestP999:
    def test_small_n_p999_is_the_maximum(self):
        values = list(np.linspace(0.0, 10.0, 100))
        tail = TailStats.from_values(values)
        assert tail.p999 == max(values)
        assert tail.p50 <= tail.p95 <= tail.p99 <= tail.p999

    def test_from_counts_p999_matches_histogram_quantile(self):
        h = Histogram(0.0, 10.0, 100)
        for v in np.linspace(0.1, 9.9, 500):
            h.add(v)
        tail = TailStats.from_counts(h.counts, 0.0, 10.0)
        assert tail.p999 == h.quantile(0.999)

    def test_merged_histogram_p999_equals_whole(self):
        """Streaming shards must agree with a single-pass fold on the
        SLO tail, bin-exactly — merging is pure integer addition."""
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 10.0, 400)
        whole = Histogram(0.0, 10.0, 100)
        a = Histogram(0.0, 10.0, 100)
        b = Histogram(0.0, 10.0, 100)
        for i, v in enumerate(values):
            whole.add(v)
            (a if i % 2 else b).add(v)
        a.merge(b)
        assert whole.quantile(0.999) == a.quantile(0.999)
        assert (
            TailStats.from_counts(a.counts, 0.0, 10.0).p999
            == whole.quantile(0.999)
        )


class TestSimilarityClamp:
    def test_identical_recordings_score_exactly_one(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal(4096)
        comp = AmbientComparator()
        s = comp.similarity(x, x)
        assert s == 1.0  # clamped, never 1.0000000000000002

    def test_constant_recording_scores_zero(self):
        comp = AmbientComparator()
        rng = np.random.default_rng(12)
        s = comp.similarity(np.zeros(4096), rng.standard_normal(4096))
        assert s == 0.0

    def test_all_scores_in_range(self):
        comp = AmbientComparator()
        rng = np.random.default_rng(13)
        for _ in range(5):
            s = comp.similarity(
                rng.standard_normal(4096), rng.standard_normal(4096)
            )
            assert -1.0 <= s <= 1.0

    def test_batch_matches_scalar_bitwise(self):
        comp = AmbientComparator()
        rng = np.random.default_rng(14)
        a = rng.standard_normal((4, 4096))
        b = rng.standard_normal((4, 4096))
        batch = comp.similarity_batch(a, b)
        scalar = np.array(
            [comp.similarity(a[i], b[i]) for i in range(4)]
        )
        assert np.array_equal(batch, scalar)
