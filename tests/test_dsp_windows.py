"""Tests for window functions and edge fading."""

import numpy as np
import pytest

from repro.dsp.windows import (
    fade_edges,
    hamming_window,
    hann_window,
    raised_cosine_ramp,
)
from repro.errors import DspError


class TestHannWindow:
    def test_endpoints_are_zero(self):
        w = hann_window(64)
        assert w[0] == pytest.approx(0.0)
        assert w[-1] == pytest.approx(0.0)

    def test_peak_at_center(self):
        w = hann_window(65)
        assert w[32] == pytest.approx(1.0)

    def test_symmetric(self):
        w = hann_window(50)
        assert np.allclose(w, w[::-1])

    def test_length_one(self):
        assert hann_window(1).tolist() == [1.0]

    def test_rejects_zero_length(self):
        with pytest.raises(DspError):
            hann_window(0)


class TestHammingWindow:
    def test_endpoints_nonzero(self):
        w = hamming_window(64)
        assert w[0] == pytest.approx(0.08, abs=1e-9)

    def test_symmetric(self):
        w = hamming_window(33)
        assert np.allclose(w, w[::-1])

    def test_values_in_unit_interval(self):
        w = hamming_window(100)
        assert np.all(w > 0.0)
        assert np.all(w <= 1.0)


class TestRaisedCosineRamp:
    def test_rising_goes_zero_to_one(self):
        r = raised_cosine_ramp(32, rising=True)
        assert r[0] == pytest.approx(0.0)
        assert r[-1] == pytest.approx(1.0)

    def test_falling_is_reversed_rising(self):
        up = raised_cosine_ramp(32, rising=True)
        down = raised_cosine_ramp(32, rising=False)
        assert np.allclose(up, down[::-1])

    def test_monotone(self):
        r = raised_cosine_ramp(64)
        assert np.all(np.diff(r) >= 0)

    def test_zero_length(self):
        assert raised_cosine_ramp(0).size == 0

    def test_negative_length_rejected(self):
        with pytest.raises(DspError):
            raised_cosine_ramp(-1)


class TestFadeEdges:
    def test_edges_attenuated_center_untouched(self):
        x = np.ones(100)
        y = fade_edges(x, 10)
        assert y[0] == pytest.approx(0.0)
        assert y[-1] == pytest.approx(0.0)
        assert np.allclose(y[10:90], 1.0)

    def test_input_not_modified(self):
        x = np.ones(50)
        fade_edges(x, 5)
        assert np.all(x == 1.0)

    def test_zero_fade_is_identity(self):
        x = np.arange(20, dtype=float)
        assert np.allclose(fade_edges(x, 0), x)

    def test_fade_longer_than_half_is_clamped(self):
        x = np.ones(10)
        y = fade_edges(x, 100)
        # Two 5-sample fades, no overlap corruption.
        assert y[0] == pytest.approx(0.0)
        assert np.isfinite(y).all()

    def test_rejects_2d_input(self):
        with pytest.raises(DspError):
            fade_edges(np.ones((3, 3)), 1)

    def test_rejects_negative_fade(self):
        with pytest.raises(DspError):
            fade_edges(np.ones(10), -1)
