"""Tests for the evaluation runner and report persistence."""

import json

import pytest

from repro.errors import WearLockError
from repro.eval.runner import (
    EXPERIMENT_REGISTRY,
    load_report,
    run_all,
    save_report,
)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "fig4_propagation", "fig5_ber_vs_ebn0", "fig6_offload",
            "fig7_range", "fig8_adaptive", "fig9_jamming",
            "fig10_compute_delay", "fig11_comm_delay",
            "fig12_total_delay", "table1_field_test", "table2_dtw",
            "case_study",
        }
        assert expected <= set(EXPERIMENT_REGISTRY)

    def test_extensions_registered(self):
        assert "security_matrix" in EXPERIMENT_REGISTRY
        assert "throughput_by_mode" in EXPERIMENT_REGISTRY


class TestRunAll:
    def test_subset_runs_and_reports_progress(self):
        seen = []
        results = run_all(
            only=["fig10_compute_delay", "fig11_comm_delay"],
            progress=seen.append,
        )
        assert seen == ["fig10_compute_delay", "fig11_comm_delay"]
        assert set(results) == {"fig10_compute_delay", "fig11_comm_delay"}
        assert len(results["fig10_compute_delay"]["rows"]) == 9

    def test_unknown_experiment_rejected(self):
        with pytest.raises(WearLockError):
            run_all(only=["fig99"])

    def test_results_are_json_safe(self):
        results = run_all(only=["fig11_comm_delay"])
        json.dumps(results)  # must not raise


class TestReportPersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        results = run_all(only=["fig10_compute_delay"])
        path = tmp_path / "report.json"
        save_report(results, path)
        loaded = load_report(path)
        assert loaded == results

    def test_report_names_the_paper(self, tmp_path):
        path = tmp_path / "report.json"
        save_report({}, path)
        payload = json.loads(path.read_text())
        assert "WearLock" in payload["paper"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(WearLockError):
            load_report(path)


class TestCliIntegration:
    def test_experiment_with_out_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig11.json"
        assert main(["experiment", "fig11", "--out", str(out)]) == 0
        loaded = load_report(out)
        assert "fig11_comm_delay" in loaded
