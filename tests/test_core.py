"""Tests for the WearLock facade, metrics and the filter chain."""

import numpy as np
import pytest

from repro import WearLock
from repro.core.metrics import (
    BerStats,
    DelayStats,
    SuccessStats,
    summarize_outcomes,
)
from repro.core.pipeline import FilterChain
from repro.errors import WearLockError


class TestWearLockFacade:
    def test_pair_and_unlock(self):
        wl = WearLock.pair(secret=b"secret")
        outcome = wl.unlock_attempt(
            environment="office", distance_m=0.4, seed=100
        )
        assert outcome.unlocked
        assert not wl.keyguard.is_locked
        assert wl.pairing.counter == 1

    def test_history_and_success_rate(self):
        wl = WearLock.pair(secret=b"secret")
        for i in range(3):
            wl.unlock_attempt(environment="office", seed=200 + i)
            wl.lock()
        assert len(wl.history) == 3
        assert wl.success_rate() == pytest.approx(1.0)

    def test_lock_relocks(self):
        wl = WearLock.pair(secret=b"secret")
        wl.unlock_attempt(environment="office", seed=300)
        wl.lock()
        assert wl.keyguard.is_locked

    def test_pin_unlock_clears_state(self):
        wl = WearLock.pair(secret=b"secret")
        wl.pin_unlock()
        assert not wl.keyguard.is_locked
        assert wl.pairing.failures == 0

    def test_rejects_empty_secret(self):
        with pytest.raises(WearLockError):
            WearLock.pair(secret=b"")

    def test_counter_advances_only_on_success(self):
        wl = WearLock.pair(secret=b"secret")
        wl.unlock_attempt(environment="office", distance_m=7.0, seed=400,
                          co_located=True)
        # Whether aborted or token-rejected, a failed attempt must not
        # advance the verified counter.
        if not wl.history[-1].unlocked:
            assert wl.pairing.counter == 0


class TestMetrics:
    def test_ber_stats(self):
        stats = BerStats.from_values([0.0, 0.1, 0.2, 0.3])
        assert stats.mean == pytest.approx(0.15)
        assert stats.median == pytest.approx(0.15)
        assert stats.n == 4

    def test_ber_stats_skips_none(self):
        stats = BerStats.from_values([0.1, None, 0.3])
        assert stats.n == 2

    def test_ber_stats_rejects_empty(self):
        with pytest.raises(WearLockError):
            BerStats.from_values([None])

    def test_delay_speedup(self):
        stats = DelayStats.from_values([1.0, 1.0, 1.0])
        assert stats.speedup_vs(2.0) == pytest.approx(0.5)

    def test_success_stats(self):
        s = SuccessStats(successes=9, attempts=10)
        assert s.rate == pytest.approx(0.9)
        assert SuccessStats(0, 0).rate == 0.0

    def test_summarize_outcomes(self):
        wl = WearLock.pair(secret=b"secret")
        outcomes = []
        for i in range(3):
            outcomes.append(
                wl.unlock_attempt(environment="office", seed=500 + i)
            )
            wl.lock()
        summary = summarize_outcomes(outcomes)
        assert summary["success"].attempts == 3
        assert summary["delay"].median > 0

    def test_summarize_rejects_empty(self):
        with pytest.raises(WearLockError):
            summarize_outcomes([])


class TestFilterChain:
    def test_all_pass(self):
        chain = (
            FilterChain()
            .add("bluetooth", lambda ctx: (True, None))
            .add("noise", lambda ctx: (True, 0.9))
        )
        result = chain.evaluate({})
        assert result.passed
        assert result.stopped_by is None
        assert result.n_filters_run == 2

    def test_stops_at_first_failure(self):
        calls = []

        def make(name, ok):
            def fn(ctx):
                calls.append(name)
                return ok, None
            return fn

        chain = (
            FilterChain()
            .add("a", make("a", True))
            .add("b", make("b", False))
            .add("c", make("c", True))
        )
        result = chain.evaluate({})
        assert not result.passed
        assert result.stopped_by == "b"
        assert calls == ["a", "b"]  # c never ran: computation saved

    def test_scores_recorded(self):
        chain = FilterChain().add("noise", lambda ctx: (True, 0.7))
        result = chain.evaluate(None)
        assert result.scores == (("noise", 0.7),)

    def test_duplicate_names_rejected(self):
        chain = FilterChain().add("x", lambda ctx: (True, None))
        with pytest.raises(WearLockError):
            chain.add("x", lambda ctx: (True, None))

    def test_empty_name_rejected(self):
        with pytest.raises(WearLockError):
            FilterChain().add("", lambda ctx: (True, None))
