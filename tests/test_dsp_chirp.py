"""Tests for LFM chirp synthesis and matched filtering."""

import numpy as np
import pytest

from repro.dsp.chirp import chirp_matched_filter, linear_chirp
from repro.errors import DspError


class TestLinearChirp:
    def test_length_and_amplitude(self):
        c = linear_chirp(256, 44100.0, 1000.0, 6000.0, amplitude=0.8)
        assert c.size == 256
        assert np.max(np.abs(c)) <= 0.8 + 1e-9

    def test_sweeps_upward_in_frequency(self):
        fs = 44100.0
        c = linear_chirp(4096, fs, 1000.0, 6000.0, fade_samples=0)
        half = c.size // 2
        def dominant(x):
            spec = np.abs(np.fft.rfft(x * np.hanning(x.size)))
            return np.fft.rfftfreq(x.size, 1 / fs)[np.argmax(spec)]
        assert dominant(c[:half]) < dominant(c[half:])

    def test_energy_concentrated_in_band(self):
        fs = 44100.0
        c = linear_chirp(2048, fs, 2000.0, 5000.0)
        spec = np.abs(np.fft.rfft(c)) ** 2
        freqs = np.fft.rfftfreq(c.size, 1 / fs)
        in_band = spec[(freqs >= 1500) & (freqs <= 5500)].sum()
        assert in_band / spec.sum() > 0.9

    def test_autocorrelation_peaks_at_zero_lag(self):
        c = linear_chirp(256, 44100.0, 1000.0, 6000.0)
        corr = np.correlate(c, c, mode="full")
        assert np.argmax(corr) == c.size - 1

    def test_rejects_frequency_beyond_nyquist(self):
        with pytest.raises(DspError):
            linear_chirp(256, 44100.0, 1000.0, 30_000.0)

    def test_rejects_too_short(self):
        with pytest.raises(DspError):
            linear_chirp(1, 44100.0, 1000.0, 6000.0)

    def test_rejects_negative_sample_rate(self):
        with pytest.raises(DspError):
            linear_chirp(256, -1.0, 100.0, 200.0)


class TestChirpMatchedFilter:
    def test_unit_energy(self):
        c = linear_chirp(256, 44100.0, 1000.0, 6000.0)
        mf = chirp_matched_filter(c)
        assert np.dot(mf, mf) == pytest.approx(1.0)

    def test_scale_invariant(self):
        c = linear_chirp(256, 44100.0, 1000.0, 6000.0)
        assert np.allclose(
            chirp_matched_filter(c), chirp_matched_filter(10.0 * c)
        )

    def test_rejects_zero_energy(self):
        with pytest.raises(DspError):
            chirp_matched_filter(np.zeros(64))

    def test_rejects_empty(self):
        with pytest.raises(DspError):
            chirp_matched_filter(np.zeros(0))
