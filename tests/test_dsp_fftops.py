"""Tests for FFT interpolation, spectrum access and Goertzel power."""

import numpy as np
import pytest

from repro.dsp.fftops import fft_interpolate, goertzel_power, spectrum_bins
from repro.errors import DspError


class TestFftInterpolate:
    def test_factor_one_is_identity(self):
        v = np.array([1 + 1j, 2 - 1j, 3, 4j])
        assert np.allclose(fft_interpolate(v, 1), v)

    def test_preserves_original_samples(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        out = fft_interpolate(v, 4)
        assert np.allclose(out[::4], v, atol=1e-10)

    def test_exact_for_bandlimited_signal(self):
        # One cycle of a complex exponential is band-limited; the
        # interpolant must reproduce the dense sampling exactly.
        m, factor = 16, 4
        dense = np.exp(2j * np.pi * 2 * np.arange(m * factor) / (m * factor))
        sparse = dense[::factor]
        out = fft_interpolate(sparse, factor)
        assert np.allclose(out, dense, atol=1e-9)

    def test_real_input_yields_real_interpolant(self):
        v = np.cos(2 * np.pi * np.arange(8) / 8)
        out = fft_interpolate(v, 2)
        assert np.max(np.abs(out.imag)) < 1e-9

    def test_output_length(self):
        assert fft_interpolate(np.ones(5), 3).size == 15

    def test_rejects_bad_factor(self):
        with pytest.raises(DspError):
            fft_interpolate(np.ones(4), 0)

    def test_rejects_empty(self):
        with pytest.raises(DspError):
            fft_interpolate(np.zeros(0), 2)


class TestSpectrumBins:
    def test_pure_tone_lands_on_its_bin(self):
        n = 256
        k = 16
        x = np.cos(2 * np.pi * k * np.arange(n) / n)
        spec = spectrum_bins(x, n)
        mags = np.abs(spec[: n // 2])
        assert np.argmax(mags) == k

    def test_truncates_long_input(self):
        x = np.ones(1000)
        assert spectrum_bins(x, 256).size == 256

    def test_pads_short_input(self):
        x = np.ones(100)
        assert spectrum_bins(x, 256).size == 256

    def test_rejects_bad_fft_size(self):
        with pytest.raises(DspError):
            spectrum_bins(np.ones(10), 0)


class TestGoertzelPower:
    def test_detects_tone_at_frequency(self):
        fs = 44100.0
        t = np.arange(4096) / fs
        x = np.sin(2 * np.pi * 3000.0 * t)
        on = goertzel_power(x, fs, 3000.0)
        off = goertzel_power(x, fs, 9000.0)
        assert on > 100 * off

    def test_agrees_with_fft(self):
        fs = 1024.0
        n = 1024
        x = np.sin(2 * np.pi * 100.0 * np.arange(n) / fs)
        g = goertzel_power(x, fs, 100.0)
        spec = np.fft.rfft(x)
        f = (np.abs(spec[100]) ** 2) / (n * n)
        assert g == pytest.approx(f, rel=1e-6)

    def test_rejects_frequency_beyond_nyquist(self):
        with pytest.raises(DspError):
            goertzel_power(np.ones(100), 1000.0, 600.0)

    def test_rejects_empty_signal(self):
        with pytest.raises(DspError):
            goertzel_power(np.zeros(0), 1000.0, 100.0)
