"""Shared fixtures for the WearLock reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.link import AcousticLink
from repro.channel.scenarios import get_environment
from repro.config import ModemConfig, SecurityConfig, SystemConfig
from repro.modem.subchannels import ChannelPlan


@pytest.fixture
def modem_config() -> ModemConfig:
    """The paper's default modem configuration."""
    return ModemConfig()


@pytest.fixture
def plan(modem_config: ModemConfig) -> ChannelPlan:
    """The default audible-band sub-channel plan."""
    return ChannelPlan.from_config(modem_config)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def quiet_link() -> AcousticLink:
    """A short, quiet, LOS acoustic link (easy channel)."""
    env = get_environment("quiet_room")
    return AcousticLink(
        room=env.room, noise=env.noise, distance_m=0.3, seed=7
    )


@pytest.fixture
def office_link() -> AcousticLink:
    """A moderately noisy office link at typical unlock distance."""
    env = get_environment("office")
    return AcousticLink(
        room=env.room, noise=env.noise, distance_m=0.4, seed=7
    )


@pytest.fixture
def system_config() -> SystemConfig:
    return SystemConfig()


@pytest.fixture
def security_config() -> SecurityConfig:
    return SecurityConfig()
