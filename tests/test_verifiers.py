"""Pluggable proximity verifiers, fusion policies, and their algebra."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.energy import SILENCE_FLOOR_SPL_DB, signal_spl
from repro.errors import WearLockError
from repro.protocol.session import (
    SessionConfig,
    UnlockSession,
    ambient_similarity,
)
from repro.security.attacks import (
    CoLocatedAttacker,
    ReplayAttacker,
    legitimate_evidence,
)
from repro.verifiers import (
    EVIDENCE_FIELD_BY_VERIFIER,
    FUSION_MODES,
    LEGACY_VERIFIERS,
    VERIFIER_NAMES,
    FusionPolicy,
    PrecomputedVerifierEvidence,
    ProximityVerifier,
    VerifierResult,
    get_verifier,
    needs_sensor_pair,
    resolve_verifier_names,
)


# ---------------------------------------------------------------------------
# Registry + typed evidence (no stringly staging keys)
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_every_verifier_satisfies_the_protocol(self):
        for name in VERIFIER_NAMES:
            verifier = get_verifier(name)
            assert isinstance(verifier, ProximityVerifier)
            assert verifier.name == name

    def test_unknown_and_duplicate_names_rejected(self):
        with pytest.raises(WearLockError):
            get_verifier("bogus")
        with pytest.raises(WearLockError):
            resolve_verifier_names(("ambient", "bogus"))
        with pytest.raises(WearLockError):
            resolve_verifier_names(("ambient", "ambient"))

    def test_legacy_resolution_honours_feature_flags(self):
        assert resolve_verifier_names(None) == LEGACY_VERIFIERS
        assert resolve_verifier_names(None, use_motion_filter=False) == (
            "ambient",
        )
        assert resolve_verifier_names(None, use_noise_filter=False) == (
            "motion-dtw",
        )

    def test_evidence_fields_total_over_registry(self):
        """Every verifier has exactly one typed staging slot."""
        fields = {f.name for f in dataclasses.fields(PrecomputedVerifierEvidence)}
        assert set(EVIDENCE_FIELD_BY_VERIFIER) == set(VERIFIER_NAMES)
        assert set(EVIDENCE_FIELD_BY_VERIFIER.values()) == fields

    def test_needs_sensor_pair_only_for_motion_domain(self):
        assert needs_sensor_pair(("motion-dtw",))
        assert needs_sensor_pair(("vibration",))
        assert not needs_sensor_pair(("ambient", "multiband"))
        assert not needs_sensor_pair(("motion-dtw",), use_motion_filter=False)


# ---------------------------------------------------------------------------
# Silence semantics (the defined-score regression)
# ---------------------------------------------------------------------------


class TestSilenceSemantics:
    def test_empty_segment_scores_zero(self):
        assert ambient_similarity(np.array([]), np.zeros(4096), 44100.0) == 0.0
        assert ambient_similarity(np.zeros(4096), np.array([]), 44100.0) == 0.0

    def test_all_silence_scores_zero(self):
        """Digital silence is below the SPL floor and carries no evidence."""
        silent = np.zeros(8192)
        assert signal_spl(silent) <= SILENCE_FLOOR_SPL_DB
        assert ambient_similarity(silent, silent, 44100.0) == 0.0

    def test_sub_floor_signal_scores_zero(self):
        rng = np.random.default_rng(0)
        # Amplitude chosen so SPL lands below the -120 dB floor.
        faint = rng.standard_normal(8192) * 1e-12
        assert signal_spl(faint) <= SILENCE_FLOOR_SPL_DB
        assert ambient_similarity(faint, faint, 44100.0) == 0.0

    def test_audible_signal_still_scores(self):
        rng = np.random.default_rng(1)
        loud = rng.standard_normal(8192) * 0.1
        assert ambient_similarity(loud, loud, 44100.0) > 0.9


# ---------------------------------------------------------------------------
# Fusion algebra (hypothesis)
# ---------------------------------------------------------------------------


def _result_strategy():
    normalized = st.floats(
        min_value=0.0,
        max_value=1.0,
        allow_nan=False,
        allow_subnormal=False,
    )
    return st.builds(
        VerifierResult,
        name=st.sampled_from(VERIFIER_NAMES),
        score=normalized,
        passed=st.booleans(),
        normalized=normalized,
        skipped=st.booleans(),
    )


class TestFusionAlgebra:
    @given(st.lists(_result_strategy(), max_size=6))
    @settings(deadline=None, max_examples=200)
    def test_and_is_stricter_than_or(self, results):
        """Anything AND accepts, OR accepts too (never the reverse)."""
        results = tuple(results)
        and_pass = FusionPolicy(mode="and").combine(results).passed
        or_pass = FusionPolicy(mode="or").combine(results).passed
        if and_pass:
            assert or_pass

    @given(
        st.lists(_result_strategy(), min_size=1, max_size=6),
        st.integers(min_value=0, max_value=5),
        st.floats(
            min_value=0.0,
            max_value=1.0,
            allow_nan=False,
            allow_subnormal=False,
        ),
        st.floats(
            min_value=0.0,
            max_value=1.0,
            allow_nan=False,
            allow_subnormal=False,
        ),
    )
    @settings(deadline=None, max_examples=200)
    def test_score_fusion_monotone_per_verifier(
        self, results, index, raised, threshold
    ):
        """Raising any one normalized score never flips pass -> fail."""
        results = tuple(results)
        index %= len(results)
        target = results[index]
        if target.skipped or target.normalized is None:
            return
        raised = max(raised, target.normalized)
        bumped = results[:index] + (
            dataclasses.replace(target, normalized=raised),
        ) + results[index + 1:]
        policy = FusionPolicy(mode="score", threshold=threshold)
        if policy.combine(results).passed:
            assert policy.combine(bumped).passed

    @given(st.lists(_result_strategy(), max_size=6))
    @settings(deadline=None, max_examples=100)
    def test_link_failure_fails_closed_in_every_mode(self, results):
        dead = VerifierResult(
            name="motion-dtw",
            score=None,
            passed=False,
            link_failed=True,
        )
        for mode in FUSION_MODES:
            decision = FusionPolicy(mode=mode).combine(tuple(results) + (dead,))
            assert not decision.passed
            assert decision.link_failed
            assert decision.abort_reason == "no_wireless_link"

    def test_skipped_results_are_neutral_everywhere(self):
        skipped = tuple(
            VerifierResult(name=n, score=None, passed=True, skipped=True)
            for n in VERIFIER_NAMES
        )
        for mode in FUSION_MODES:
            assert FusionPolicy(mode=mode).combine(skipped).passed

    def test_fusion_spec_parsing(self):
        assert FusionPolicy.from_spec("score:0.7").threshold == 0.7
        assert FusionPolicy.from_spec("or").mode == "or"
        with pytest.raises(WearLockError):
            FusionPolicy.from_spec("xor")
        with pytest.raises(WearLockError):
            FusionPolicy.from_spec("score:1.5")


# ---------------------------------------------------------------------------
# Legacy equivalence: explicit pair + AND == the seed's hardwired chain
# ---------------------------------------------------------------------------


class TestLegacyEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 42, 123])
    def test_explicit_legacy_config_bit_identical(self, seed):
        base = UnlockSession(SessionConfig(seed=seed)).run()
        explicit = UnlockSession(
            SessionConfig(
                seed=seed, verifiers=LEGACY_VERIFIERS, fusion="and"
            )
        ).run()
        assert explicit.unlocked == base.unlocked
        assert explicit.abort_reason == base.abort_reason
        assert explicit.total_delay_s == base.total_delay_s
        assert explicit.raw_ber == base.raw_ber
        assert explicit.motion_score == base.motion_score
        assert explicit.noise_similarity == base.noise_similarity
        assert explicit.watch_energy_j == base.watch_energy_j
        assert explicit.phone_energy_j == base.phone_energy_j

    def test_outcome_exposes_verifier_results(self):
        outcome = UnlockSession(SessionConfig(seed=7)).run()
        names = [r.name for r in outcome.verifier_results]
        assert names == list(LEGACY_VERIFIERS)


# ---------------------------------------------------------------------------
# Four-verifier sessions: determinism and attacker evidence
# ---------------------------------------------------------------------------


class TestFourVerifierSessions:
    def test_score_fusion_session_deterministic(self):
        cfg = dict(
            seed=11,
            verifiers=tuple(VERIFIER_NAMES),
            fusion="score:0.5",
        )
        a = UnlockSession(SessionConfig(**cfg)).run()
        b = UnlockSession(SessionConfig(**cfg)).run()
        assert a.unlocked == b.unlocked
        assert a.total_delay_s == b.total_delay_s
        assert [r.score for r in a.verifier_results] == [
            r.score for r in b.verifier_results
        ]
        assert len(a.verifier_results) == len(VERIFIER_NAMES)

    def test_offline_evidence_separates_honest_from_strangers(self):
        """Across trials, motion-domain verifiers rank honest evidence
        above both attackers' (the matrix experiment's core claim)."""
        for name in ("motion-dtw", "vibration"):
            verifier = get_verifier(name)
            honest, attack = [], []
            for s in range(6):
                honest.append(
                    verifier.score(legitimate_evidence(seed=s)).normalized
                )
                attack.append(
                    verifier.score(
                        CoLocatedAttacker().proximity_evidence(seed=s)
                    ).normalized
                )
                attack.append(
                    verifier.score(
                        ReplayAttacker().proximity_evidence(seed=s)
                    ).normalized
                )
            assert np.mean(honest) > np.mean(attack), name
