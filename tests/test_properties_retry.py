"""Property-based tests on the coding and retry invariants.

Two families:

* the repetition/majority code corrects any pattern of up to
  ``(factor - 1) // 2`` flips *per coded group* — the error-correction
  headroom the retry loop leans on before it ever NACKs;
* the retry loop's modulation downgrades are monotone: across NACKs
  and even across a re-probe, the attempted constellation order never
  increases (``mode_ceiling`` only moves down the ladder).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import Tracer
from repro.eval.batch import cell_seed
from repro.modem.adaptive import TRANSMISSION_MODES, AdaptiveModulator
from repro.modem.coding import RepetitionCode
from repro.modem.constellation import get_constellation
from repro.protocol.session import (
    RetryPolicy,
    SessionConfig,
    UnlockSession,
)

odd_factors = st.sampled_from([1, 3, 5, 7, 9])


@st.composite
def coded_words_with_flips(draw):
    """A coded repetition word plus a correctable flip pattern."""
    factor = draw(odd_factors)
    n_bits = draw(st.integers(min_value=1, max_value=48))
    bits = np.array(
        draw(
            st.lists(
                st.integers(0, 1), min_size=n_bits, max_size=n_bits
            )
        ),
        dtype=np.uint8,
    )
    bound = (factor - 1) // 2
    flips = []
    for group in range(n_bits):
        k = draw(st.integers(min_value=0, max_value=bound))
        positions = draw(
            st.lists(
                st.integers(0, factor - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        flips.extend(group * factor + p for p in positions)
    return factor, bits, flips


class TestRepetitionRoundTrip:
    @given(coded_words_with_flips())
    @settings(max_examples=60, deadline=None)
    def test_decodes_exactly_under_correctable_flips(self, case):
        factor, bits, flips = case
        code = RepetitionCode(factor)
        coded = code.encode(bits)
        corrupted = coded.copy()
        for pos in flips:
            corrupted[pos] ^= 1
        decoded = code.decode(corrupted, bits.size)
        assert np.array_equal(decoded, bits)

    @given(odd_factors, st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_majority_breaks_only_past_the_bound(self, factor, n_bits):
        """Flipping a full majority of one group must flip that bit."""
        code = RepetitionCode(factor)
        bits = np.zeros(n_bits, dtype=np.uint8)
        coded = code.encode(bits)
        majority = (factor - 1) // 2 + 1
        coded[:majority] ^= 1
        decoded = code.decode(coded, n_bits)
        assert decoded[0] == 1
        assert not decoded[1:].any()


class TestDowngradeMonotone:
    def test_next_lower_walks_down_and_terminates(self):
        modulator = AdaptiveModulator()
        seen = []
        mode = modulator.modes[0]
        while mode is not None:
            seen.append(mode)
            mode = modulator.next_lower(mode)
        assert tuple(seen) == modulator.modes

    @given(st.sampled_from(TRANSMISSION_MODES))
    @settings(max_examples=10, deadline=None)
    def test_next_lower_reduces_constellation_order(self, mode):
        modulator = AdaptiveModulator()
        lower = modulator.next_lower(mode)
        if lower is not None:
            assert (
                get_constellation(lower).order
                <= get_constellation(mode).order
            )

    @staticmethod
    def _order(mode: str) -> int:
        return get_constellation(mode).order

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=12, deadline=None)
    def test_retry_sequence_never_climbs(self, trial):
        """End-to-end: the modes actually attempted are non-increasing.

        Sessions run under a persistent OTP-frame fault so the loop
        downgrades and (at the ladder's bottom) re-probes; even the
        re-probe's fresh mode selection must respect the ceiling.
        """
        tracer = Tracer()
        config = SessionConfig(
            seed=cell_seed(77, trial),
            faults="snr_collapse@otp-tx:severity=3,hits=none",
            retry=RetryPolicy(max_attempts=3, max_reprobes=1),
        )
        outcome = UnlockSession(config).run(tracer=tracer)
        modes = [m for m in (outcome.mode,) if m]
        retry_spans = [
            s for s in outcome.trace.spans if s.name == "retry.attempt"
        ]
        attempted = [
            s.tags["failed_mode"] for s in retry_spans if "failed_mode" in s.tags
        ] + modes
        orders = [self._order(m) for m in attempted if m]
        assert orders == sorted(orders, reverse=True)
        # And the loop respected its bounds.
        assert outcome.attempts <= 3
        assert outcome.reprobes <= 1

    def test_reprobe_cannot_reselect_higher_mode(self):
        """Directly: a ceiling keeps select_mode off higher orders.

        A channel report good enough for the top-of-ladder mode must
        still yield the ceiling's mode when ``allowed_modes`` is
        restricted — this is what keeps a re-probe monotone.
        """
        from repro.config import SystemConfig
        from repro.protocol.controllers import PhoneController
        from repro.security.otp import OtpManager

        class _Report:
            recommended_plan = None

            @staticmethod
            def ebn0_db(config, plan, mode):
                return 60.0  # enough Eb/N0 for any deployed mode

        phone = PhoneController(
            SystemConfig(), OtpManager(b"secret-for-test")
        )
        modes = phone.modulator.modes
        unrestricted = phone.select_mode(_Report(), 0.1)
        assert unrestricted.mode == modes[0]
        for start in range(1, len(modes)):
            allowed = modes[start:]
            decision = phone.select_mode(
                _Report(), 0.1, allowed_modes=allowed
            )
            assert decision.mode in allowed
            assert self._order(decision.mode) <= self._order(modes[start])
