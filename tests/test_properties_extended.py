"""Additional property-based tests: plans, HOTP windows, delay spread."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.multipath import rms_delay_spread
from repro.config import ModemConfig, SecurityConfig
from repro.modem.coding import BlockInterleaver
from repro.modem.bits import random_bits
from repro.modem.subchannels import ChannelPlan
from repro.protocol.events import Timeline
from repro.security.hotp import hotp_token_bits
from repro.security.otp import OtpManager


class TestPlanProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(deadline=None, max_examples=25)
    def test_selection_output_always_valid_plan(self, seed):
        """Any noise vector produces a structurally valid plan."""
        plan = ChannelPlan.from_config(ModemConfig())
        rng = np.random.default_rng(seed)
        noise = 10.0 ** rng.uniform(-3, 6, size=129)
        new = plan.select_data_channels(noise)
        # Constructor validation ran, so structural invariants hold;
        # double-check the critical ones explicitly.
        assert len(new.data) == len(plan.data)
        assert not set(new.data) & set(new.pilots)
        lo, hi = min(new.pilots), max(new.pilots)
        assert all(lo <= b <= hi for b in new.data)

    def test_near_ultrasound_shift_preserves_structure(self):
        base = ChannelPlan.from_config(ModemConfig())
        shifted = ChannelPlan.from_config(ModemConfig().near_ultrasound())
        assert shifted.pilot_spacing == base.pilot_spacing
        assert len(shifted.data) == len(base.data)
        assert len(shifted.null_channels(0)) == len(base.null_channels(0))


class TestHotpWindowProperties:
    @given(st.integers(0, 200), st.integers(0, 3))
    @settings(deadline=None, max_examples=40)
    def test_window_accepts_exactly_drift_within_lookahead(
        self, start, drift
    ):
        config = SecurityConfig(counter_look_ahead=3)
        mgr = OtpManager(b"key", config=config, initial_counter=start)
        token = hotp_token_bits(b"key", start + drift, mgr.token_bits)
        result = mgr.verify(token)
        assert result.ok
        assert result.matched_counter == start + drift
        # Counter always moves strictly past the matched value.
        assert mgr.counter == start + drift + 1

    @given(st.integers(0, 100))
    @settings(deadline=None, max_examples=20)
    def test_consumed_token_never_replays(self, start):
        mgr = OtpManager(b"key", initial_counter=start)
        token = mgr.generate()
        assert mgr.verify(token).ok
        assert not mgr.verify(token).ok


class TestDelaySpreadProperties:
    # Subnormal taps are excluded: scaling one below the smallest
    # subnormal flushes it to exactly zero, which erases the tap and
    # legitimately changes the spread — not an invariance violation.
    profiles = st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_subnormal=False),
        min_size=1,
        max_size=64,
    ).map(np.asarray)

    @given(profiles)
    def test_nonnegative(self, profile):
        assert rms_delay_spread(profile, 44_100.0) >= 0.0

    @given(profiles, st.floats(min_value=0.1, max_value=100.0))
    def test_scale_invariance(self, profile, scale):
        a = rms_delay_spread(profile, 44_100.0)
        b = rms_delay_spread(profile * scale, 44_100.0)
        assert a == pytest.approx(b, abs=1e-12)

    @given(profiles)
    def test_bounded_by_window(self, profile):
        """τ_rms can never exceed the profile's time extent."""
        tau = rms_delay_spread(profile, 44_100.0)
        assert tau <= profile.size / 44_100.0


class TestInterleaverProperties:
    @given(
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(0, 400),
        st.integers(0, 2**31 - 1),
    )
    @settings(deadline=None, max_examples=40)
    def test_roundtrip(self, rows, cols, n_bits, seed):
        il = BlockInterleaver(rows, cols)
        bits = random_bits(n_bits, rng=seed)
        if n_bits == 0:
            return
        out = il.deinterleave(il.interleave(bits), n_bits)
        assert np.array_equal(out, bits)

    @given(st.integers(2, 10), st.integers(2, 10))
    @settings(deadline=None, max_examples=20)
    def test_interleaving_is_a_permutation(self, rows, cols):
        il = BlockInterleaver(rows, cols)
        n = rows * cols
        identity = np.arange(n) % 2
        inter = il.interleave(identity.astype(np.uint8))
        assert sorted(inter.tolist()) == sorted(identity.tolist())


class TestTimelineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=1,
            max_size=20,
        )
    )
    def test_total_is_sum_of_durations(self, durations):
        tl = Timeline()
        for i, d in enumerate(durations):
            tl.record(f"e{i}", d, "cat")
        assert tl.total == pytest.approx(sum(durations))
        assert tl.by_category()["cat"] == pytest.approx(sum(durations))

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=2,
            max_size=10,
        )
    )
    def test_events_never_overlap(self, durations):
        tl = Timeline()
        for i, d in enumerate(durations):
            tl.record(f"e{i}", d, "cat")
        events = tl.events
        for a, b in zip(events, events[1:]):
            assert b.start == pytest.approx(a.end)
