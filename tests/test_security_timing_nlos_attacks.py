"""Tests for the timing guard, NLOS detector and attack simulators."""

import numpy as np
import pytest

from repro.config import SecurityConfig
from repro.errors import ReplayDetectedError, SecurityError
from repro.security.attacks import (
    BruteForceAttacker,
    CoLocatedAttacker,
    RelayAttacker,
    ReplayAttacker,
)
from repro.security.nlos import NlosDetector
from repro.security.otp import OtpManager
from repro.security.timing import TimingGuard, TimingObservation


def _legit_obs(extra: float = 0.0) -> TimingObservation:
    obs = TimingObservation(
        wireless_rtt=0.09, stack_delay=0.12, acoustic_onset=0.0
    )
    return TimingObservation(
        wireless_rtt=obs.wireless_rtt,
        stack_delay=obs.stack_delay,
        acoustic_onset=obs.expected_onset() + 0.05 + extra,
    )


class TestTimingGuard:
    def test_accepts_legitimate_round(self):
        guard = TimingGuard(budget=0.35)
        guard.check(_legit_obs())  # must not raise

    def test_rejects_replay_latency(self):
        guard = TimingGuard(budget=0.35)
        with pytest.raises(ReplayDetectedError):
            guard.check(_legit_obs(extra=0.8))

    def test_rejects_too_early_onset(self):
        guard = TimingGuard(budget=0.35, calibration_margin=0.05)
        early = TimingObservation(
            wireless_rtt=0.09, stack_delay=0.12, acoustic_onset=0.0
        )
        with pytest.raises(ReplayDetectedError):
            guard.check(early)

    def test_is_legitimate_nonraising(self):
        guard = TimingGuard()
        assert guard.is_legitimate(_legit_obs())
        assert not guard.is_legitimate(_legit_obs(extra=2.0))

    def test_history_recorded(self):
        guard = TimingGuard()
        guard.is_legitimate(_legit_obs())
        guard.is_legitimate(_legit_obs())
        assert len(guard.history) == 2

    def test_rejects_bad_budget(self):
        with pytest.raises(SecurityError):
            TimingGuard(budget=0.0)


class TestNlosDetector:
    def test_low_score_aborts(self):
        det = NlosDetector(score_threshold=0.05)
        verdict = det.classify(0.02, np.ones(10), 44100.0)
        assert verdict.should_abort
        assert verdict.nlos

    def test_tight_profile_is_los(self):
        det = NlosDetector(tau_threshold=4e-4)
        profile = np.zeros(200)
        profile[0] = 1.0
        profile[3] = 0.2
        verdict = det.classify(0.8, profile, 44100.0)
        assert verdict.preamble_ok
        assert not verdict.nlos

    def test_spread_profile_is_nlos(self):
        det = NlosDetector(tau_threshold=4e-4)
        profile = np.zeros(200)
        profile[::10] = 1.0  # energy smeared over ~4.5 ms
        verdict = det.classify(0.8, profile, 44100.0)
        assert verdict.nlos

    def test_rejects_bad_thresholds(self):
        with pytest.raises(SecurityError):
            NlosDetector(score_threshold=0.0)
        with pytest.raises(SecurityError):
            NlosDetector(tau_threshold=-1.0)


class TestBruteForce:
    def test_lockout_stops_attack(self):
        mgr = OtpManager(b"victim-key", SecurityConfig(max_failures=3))
        attacker = BruteForceAttacker(token_bits=31, rng=0)
        outcome = attacker.attack(mgr)
        assert not outcome.succeeded
        assert mgr.locked_out

    def test_success_probability_bounded(self):
        """With 31-bit tokens and 3 tries, P(success) <= 3/2^31 —
        run many sessions against a tiny token space to validate the
        mechanism instead (4-bit space, expect some successes)."""
        rng = np.random.default_rng(1)
        wins = 0
        for i in range(200):
            mgr = OtpManager(
                b"victim-key",
                SecurityConfig(
                    otp_bits=4, max_failures=3, counter_look_ahead=0
                ),
                initial_counter=i,
            )
            attacker = BruteForceAttacker(token_bits=4, rng=rng)
            wins += attacker.attack(mgr).succeeded
        # Per guess p = 1/16; three tries ≈ 17.7% per session.
        assert 15 <= wins <= 65

    def test_rejects_bad_bits(self):
        with pytest.raises(SecurityError):
            BruteForceAttacker(token_bits=0)


class TestReplayAttacker:
    def test_capture_and_replay_bit_exact(self):
        attacker = ReplayAttacker()
        wave = np.sin(np.linspace(0, 10, 1000))
        attacker.capture(wave)
        assert np.array_equal(attacker.replay(), wave)

    def test_replay_without_capture_raises(self):
        with pytest.raises(SecurityError):
            ReplayAttacker().replay()

    def test_replay_defeated_by_timing_guard(self):
        guard = TimingGuard(budget=0.35)
        attacker = ReplayAttacker(replay_latency=0.8)
        legit = _legit_obs()
        assert guard.is_legitimate(legit)
        assert not guard.is_legitimate(attacker.timing_observation(legit))

    def test_replay_defeated_by_otp_freshness(self):
        """Even an instant replay fails: the token was consumed."""
        mgr = OtpManager(b"key")
        token = mgr.generate()
        assert mgr.verify(token).ok
        assert not mgr.verify(token).ok


class TestRelayAttacker:
    def test_distortion_changes_signal(self):
        attacker = RelayAttacker()
        x = np.sin(2 * np.pi * 3000 * np.arange(4096) / 44100.0)
        y = attacker.distort(x, 44100.0)
        assert y.size == x.size
        assert not np.allclose(x, y, atol=1e-3)

    def test_relay_adds_timing_delay(self):
        attacker = RelayAttacker(relay_latency=0.25)
        legit = _legit_obs()
        relayed = attacker.timing_observation(legit)
        assert relayed.acoustic_onset == pytest.approx(
            legit.acoustic_onset + 0.25
        )

    def test_fast_relay_evades_loose_guard(self):
        """The paper's acknowledged limitation: an ideal low-latency
        relay slips under a generous timing budget."""
        guard = TimingGuard(budget=0.35)
        attacker = RelayAttacker(relay_latency=0.1)
        assert guard.is_legitimate(attacker.timing_observation(_legit_obs()))


class TestCoLocatedAttacker:
    def test_channel_kwargs(self):
        a = CoLocatedAttacker(distance_m=2.0, concealed=True)
        kwargs = a.channel_kwargs()
        assert kwargs["distance_m"] == 2.0
        assert kwargs["los"] is False

    def test_rejects_bad_distance(self):
        with pytest.raises(SecurityError):
            CoLocatedAttacker(distance_m=0.0)
