"""Tests for the evaluation harness: trials, PIN model, reporting."""

import numpy as np
import pytest

from repro.channel.noise import NoiseScene
from repro.errors import WearLockError
from repro.eval.pin_entry import PinEntryModel
from repro.eval.reporting import format_series, format_table
from repro.eval.workloads import TrialSpec, average_ber, ber_trial


class TestBerTrial:
    def test_quiet_trial_low_ber(self):
        spec = TrialSpec(mode="QPSK", distance_m=0.3, tx_spl=75.0)
        result = ber_trial(spec, rng=np.random.default_rng(0))
        assert result.detected
        assert result.ber < 0.05

    def test_noisy_far_trial_high_ber(self):
        spec = TrialSpec(
            mode="8PSK", distance_m=4.0, tx_spl=55.0,
            noise=NoiseScene(spl_db=55.0),
        )
        result = ber_trial(spec, rng=np.random.default_rng(1))
        assert result.ber > 0.2

    def test_undetected_frame_counts_as_ber_one(self):
        spec = TrialSpec(
            mode="QPSK", distance_m=8.0, tx_spl=40.0,
            noise=NoiseScene(spl_db=60.0),
        )
        result = ber_trial(spec, rng=np.random.default_rng(2))
        if not result.detected:
            assert result.ber == 1.0

    def test_ultrasound_band(self):
        spec = TrialSpec(
            mode="QPSK", band="ultrasound", distance_m=0.3, tx_spl=70.0
        )
        result = ber_trial(spec, rng=np.random.default_rng(3))
        assert result.detected
        assert result.ber < 0.1

    def test_average_ber_aggregates(self):
        spec = TrialSpec(mode="QPSK", distance_m=0.3, tx_spl=75.0)
        avg = average_ber(spec, n_trials=3, seed=4)
        assert 0.0 <= avg.ber <= 1.0
        assert avg.psnr_db > 0


class TestPinEntryModel:
    def test_median_matches_calibration(self):
        pin = PinEntryModel()
        assert pin.median_delay(4) == pytest.approx(2.5, abs=0.3)
        assert pin.median_delay(6) == pytest.approx(3.2, abs=0.4)

    def test_more_digits_slower(self):
        pin = PinEntryModel()
        assert pin.median_delay(6) > pin.median_delay(4)

    def test_samples_positive_and_spread(self):
        pin = PinEntryModel()
        samples = pin.sample_many(4, 100, seed=0)
        assert np.all(samples > 0)
        assert samples.std() > 0.1

    def test_sample_median_near_model_median(self):
        pin = PinEntryModel()
        samples = pin.sample_many(4, 400, seed=1)
        assert np.median(samples) == pytest.approx(
            pin.median_delay(4), rel=0.15
        )

    def test_rejects_bad_digits(self):
        with pytest.raises(WearLockError):
            PinEntryModel().median_delay(0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            "Demo", ["name", "value"], [["alpha", 1.0], ["b", 22.5]]
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        assert len(lines) == 7  # title, rule, header, rule, 2 rows, rule

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(WearLockError):
            format_table("t", ["a", "b"], [["only-one"]])

    def test_format_series(self):
        text = format_series(
            "S", "x", [1, 2], {"y1": [0.1, 0.2], "y2": [3, 4]}
        )
        assert "y1" in text and "y2" in text
        assert "0.1000" in text

    def test_float_formatting(self):
        text = format_table("t", ["v"], [[1.23456789e-8], [float("inf")]])
        assert "e-08" in text
        assert "inf" in text
