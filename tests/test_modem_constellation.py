"""Tests for constellations: Gray mapping, normalization, demapping."""

import numpy as np
import pytest

from repro.errors import ModemError
from repro.modem.bits import random_bits
from repro.modem.constellation import (
    BASK,
    BPSK,
    CONSTELLATIONS,
    PSK8,
    QAM16,
    QASK,
    QPSK,
    Constellation,
    get_constellation,
)

ALL = [BASK, QASK, BPSK, QPSK, PSK8, QAM16]


class TestStructure:
    @pytest.mark.parametrize("c", ALL, ids=lambda c: c.name)
    def test_unit_average_energy(self, c):
        pts = np.asarray(c.points)
        assert np.mean(np.abs(pts) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("c", ALL, ids=lambda c: c.name)
    def test_point_count(self, c):
        assert len(c.points) == 2 ** c.bits_per_symbol

    def test_orders(self):
        assert BASK.order == 2
        assert QASK.order == 4
        assert QPSK.order == 4
        assert PSK8.order == 8
        assert QAM16.order == 16

    def test_ask_uses_magnitude_decision(self):
        assert BASK.decision == "magnitude"
        assert QASK.decision == "magnitude"
        assert QPSK.decision == "euclidean"

    def test_psk_points_on_unit_circle(self):
        for c in (BPSK, QPSK, PSK8):
            assert np.allclose(np.abs(np.asarray(c.points)), 1.0)

    def test_ask_points_positive_real(self):
        for c in (BASK, QASK):
            pts = np.asarray(c.points)
            assert np.allclose(pts.imag, 0.0)
            assert np.all(pts.real > 0.0)

    def test_registry_lookup(self):
        assert get_constellation("QPSK") is QPSK
        with pytest.raises(ModemError):
            get_constellation("64QAM")
        assert set(CONSTELLATIONS) == {
            "BASK", "QASK", "BPSK", "QPSK", "8PSK", "16QAM"
        }


class TestMapping:
    @pytest.mark.parametrize("c", ALL, ids=lambda c: c.name)
    def test_roundtrip_clean(self, c):
        bits = random_bits(c.bits_per_symbol * 40, rng=3)
        symbols = c.map(bits)
        assert np.array_equal(c.demap(symbols), bits)

    @pytest.mark.parametrize("c", ALL, ids=lambda c: c.name)
    def test_roundtrip_with_small_noise(self, c):
        rng = np.random.default_rng(4)
        bits = random_bits(c.bits_per_symbol * 60, rng=rng)
        symbols = c.map(bits)
        noisy = symbols + 0.01 * (
            rng.standard_normal(symbols.size)
            + 1j * rng.standard_normal(symbols.size)
        )
        assert np.array_equal(c.demap(noisy), bits)

    def test_gray_property_psk(self):
        """Adjacent PSK points differ in exactly one bit."""
        for c in (QPSK, PSK8):
            pts = np.asarray(c.points)
            order = np.argsort(np.angle(pts))
            labels = list(order)
            for i in range(len(labels)):
                a = labels[i]
                b = labels[(i + 1) % len(labels)]
                assert bin(a ^ b).count("1") == 1, c.name

    def test_gray_property_ask(self):
        """Amplitude-adjacent ASK points differ in exactly one bit."""
        for c in (BASK, QASK):
            pts = np.asarray(c.points)
            order = np.argsort(np.abs(pts))
            for i in range(len(order) - 1):
                assert bin(order[i] ^ order[i + 1]).count("1") == 1

    def test_ask_ignores_phase_errors(self):
        """The envelope detector must demap rotated ASK correctly."""
        bits = random_bits(QASK.bits_per_symbol * 50, rng=5)
        symbols = QASK.map(bits) * np.exp(1j * 0.8)
        assert np.array_equal(QASK.demap(symbols), bits)

    def test_psk_breaks_under_large_rotation(self):
        bits = random_bits(PSK8.bits_per_symbol * 50, rng=6)
        rotated = PSK8.map(bits) * np.exp(1j * np.pi / 4)
        assert not np.array_equal(PSK8.demap(rotated), bits)

    def test_map_rejects_partial_symbol(self):
        with pytest.raises(ModemError):
            QPSK.map(np.array([1, 0, 1], dtype=np.uint8))

    def test_empty_maps_to_empty(self):
        assert QPSK.map(np.zeros(0, dtype=np.uint8)).size == 0
        assert QPSK.demap(np.zeros(0, dtype=complex)).size == 0

    def test_min_distance_positive(self):
        for c in ALL:
            assert c.min_distance() > 0.0

    def test_min_distance_ordering(self):
        """Denser constellations have smaller minimum distance."""
        assert QAM16.min_distance() < QPSK.min_distance()
        assert PSK8.min_distance() < QPSK.min_distance()


class TestValidation:
    def test_rejects_wrong_point_count(self):
        with pytest.raises(ModemError):
            Constellation(name="bad", points=(1 + 0j,), bits_per_symbol=2)

    def test_rejects_unknown_decision(self):
        with pytest.raises(ModemError):
            Constellation(
                name="bad",
                points=(1 + 0j, -1 + 0j),
                bits_per_symbol=1,
                decision="psychic",
            )
