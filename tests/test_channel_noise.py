"""Tests for noise generation: white, pink, shaped, jammers, scenes."""

import numpy as np
import pytest

from repro.channel.noise import (
    NoiseScene,
    pink_noise,
    shaped_noise,
    tone_jammer,
    white_noise,
)
from repro.dsp.energy import signal_spl
from repro.dsp.spectrum import band_power
from repro.errors import ChannelError

FS = 44_100.0


class TestWhiteNoise:
    def test_calibrated_spl(self):
        x = white_noise(44100, 50.0, rng=np.random.default_rng(0))
        assert signal_spl(x) == pytest.approx(50.0, abs=0.1)

    def test_roughly_flat_spectrum(self):
        x = white_noise(44100 * 2, 60.0, rng=np.random.default_rng(1))
        low = band_power(x, FS, 100.0, 5000.0)
        high = band_power(x, FS, 10000.0, 14900.0)
        assert 0.3 < low / high < 3.0

    def test_zero_samples(self):
        assert white_noise(0, 40.0).size == 0

    def test_rejects_negative_count(self):
        with pytest.raises(ChannelError):
            white_noise(-1, 40.0)


class TestPinkNoise:
    def test_calibrated_spl(self):
        x = pink_noise(44100, 45.0, rng=np.random.default_rng(2))
        assert signal_spl(x) == pytest.approx(45.0, abs=0.1)

    def test_energy_concentrated_low(self):
        x = pink_noise(44100 * 2, 60.0, rng=np.random.default_rng(3))
        low = band_power(x, FS, 50.0, 1000.0)
        high = band_power(x, FS, 5000.0, 15000.0)
        assert low > high


class TestShapedNoise:
    def test_respects_band_shape(self):
        x = shaped_noise(
            44100 * 2, 55.0, FS,
            bands=[(100.0, 2000.0, 1.0)],
            rng=np.random.default_rng(4),
        )
        inside = band_power(x, FS, 100.0, 2000.0)
        outside = band_power(x, FS, 6000.0, 15000.0)
        assert inside > 20 * outside

    def test_calibrated_spl(self):
        x = shaped_noise(
            44100, 48.0, FS,
            bands=[(200.0, 3000.0, 1.0), (30.0, 150.0, 0.5)],
            rng=np.random.default_rng(5),
        )
        assert signal_spl(x) == pytest.approx(48.0, abs=0.1)

    def test_rejects_empty_bands(self):
        with pytest.raises(ChannelError):
            shaped_noise(100, 40.0, FS, bands=[])


class TestToneJammer:
    def test_energy_at_tone_frequencies(self):
        x = tone_jammer(44100, FS, [3000.0], 60.0, rng=np.random.default_rng(6))
        on = band_power(x, FS, 2900.0, 3100.0)
        off = band_power(x, FS, 5000.0, 6000.0)
        assert on > 100 * off

    def test_supports_up_to_six_tones(self):
        freqs = [1000.0 * k for k in range(1, 7)]
        x = tone_jammer(4410, FS, freqs, 60.0)
        assert x.size == 4410

    def test_rejects_seven_tones(self):
        with pytest.raises(ChannelError):
            tone_jammer(100, FS, [1000.0 * k for k in range(1, 8)], 60.0)

    def test_empty_freqs_silent(self):
        assert np.all(tone_jammer(100, FS, [], 60.0) == 0.0)


class TestNoiseScene:
    def test_sample_is_reproducible_with_seed(self):
        scene = NoiseScene(spl_db=50.0, seed=7)
        a = scene.sample(1000)
        b = scene.sample(1000)
        assert np.allclose(a, b)

    def test_with_jammer_adds_tone(self):
        scene = NoiseScene(spl_db=30.0, seed=8)
        jammed = scene.with_jammer([4000.0], 55.0)
        x = jammed.sample(44100)
        on = band_power(x, FS, 3900.0, 4100.0)
        off = band_power(x, FS, 8000.0, 9000.0)
        assert on > 10 * off

    def test_effective_spl_power_sums(self):
        scene = NoiseScene(spl_db=50.0).with_jammer([1000.0], 50.0)
        # Two equal powers sum to +3 dB.
        assert scene.effective_spl() == pytest.approx(53.01, abs=0.1)

    def test_effective_spl_without_jammer(self):
        assert NoiseScene(spl_db=42.0).effective_spl() == pytest.approx(42.0)
