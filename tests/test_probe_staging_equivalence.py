"""Bit-identity of the shard-batched Phase-1 probe DSP.

The fleet's ``staging="probe"`` fast path replays every session's
probe-tx rng stream out of band and runs the channel synthesis,
synchronizer correlations and pilot receive FFTs as stacked batches.
These tests pin the contract at both layers: each batch primitive is
bit-identical to its scalar counterpart (including the generator
stream positions it leaves behind), and whole shards produce the same
session records at every staging level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.hardware import MicrophoneModel
from repro.channel.multipath import RoomImpulseResponse, convolve_ir_rows
from repro.channel.noise import NoiseScene, shaped_noise, shaped_noise_batch
from repro.config import ModemConfig
from repro.core.colocation import AmbientComparator
from repro.dsp.correlation import (
    sliding_normalized_correlation,
    sliding_normalized_correlation_batch,
)
from repro.dsp.filters import (
    design_bandpass_fir,
    fir_filter,
    fir_filter_batch,
)
from repro.dsp.spectrum import welch_psd, welch_psd_batch
from repro.errors import ConfigurationError, ModemError
from repro.fleet import FleetConfig, FleetScheduler, run_shard
from repro.fleet.executor import STAGING_LEVELS
from repro.modem.probe import ChannelProber

BANDS = ((0.0, 1200.0, 1.0), (2000.0, 5000.0, 0.6))
FS = 44_100.0


class TestBatchPrimitives:
    """Each stacked transform equals its scalar counterpart bit-for-bit."""

    def test_fir_filter_batch_matches_rows(self):
        rng = np.random.default_rng(0)
        rows = rng.standard_normal((5, 3000))
        taps = design_bandpass_fir(800.0, 4000.0, FS, num_taps=257)
        batch = fir_filter_batch(rows, taps)
        for i, row in enumerate(rows):
            assert np.array_equal(batch[i], fir_filter(row, taps))

    def test_sliding_ncc_batch_matches_rows(self):
        rng = np.random.default_rng(1)
        rows = rng.standard_normal((4, 2048))
        template = rng.standard_normal(300)
        batch = sliding_normalized_correlation_batch(rows, template)
        for i, row in enumerate(rows):
            assert np.array_equal(
                batch[i], sliding_normalized_correlation(row, template)
            )

    def test_welch_psd_batch_matches_rows(self):
        rng = np.random.default_rng(2)
        rows = rng.standard_normal((3, 5000))
        freqs_b, psds = welch_psd_batch(rows, FS)
        for i, row in enumerate(rows):
            freqs, psd = welch_psd(row, FS)
            assert np.array_equal(freqs_b, freqs)
            assert np.array_equal(psds[i], psd)

    def test_convolve_ir_rows_matches_apply(self):
        room = RoomImpulseResponse()
        rng = np.random.default_rng(3)
        signal = rng.standard_normal(4000)
        irs = np.stack(
            [room.sample(np.random.default_rng(s)) for s in range(4)]
        )
        batch = convolve_ir_rows(signal, irs)
        for s in range(4):
            scalar = room.apply(signal, rng=np.random.default_rng(s))
            assert np.array_equal(batch[s], scalar)

    def test_shaped_noise_batch_matches_scalar_and_stream(self):
        seeds = (10, 11, 12)
        gens = [np.random.default_rng(s) for s in seeds]
        batch = shaped_noise_batch(4096, 55.0, FS, BANDS, gens)
        for i, seed in enumerate(seeds):
            mirror = np.random.default_rng(seed)
            scalar = shaped_noise(4096, 55.0, FS, BANDS, rng=mirror)
            assert np.array_equal(batch[i], scalar)
            # The staged path hands the generators back to live code, so
            # the stream must stop at exactly the scalar position.
            assert gens[i].bit_generator.state == mirror.bit_generator.state

    def test_shaped_noise_batch_draws_only_mode(self):
        """``values=False`` advances the streams identically but skips
        the FIR shaping (the quiet-scene staging shortcut)."""
        gens = [np.random.default_rng(s) for s in (20, 21)]
        out = shaped_noise_batch(2048, 55.0, FS, BANDS, gens, values=False)
        assert not out.any()
        for seed, gen in zip((20, 21), gens):
            mirror = np.random.default_rng(seed)
            shaped_noise(2048, 55.0, FS, BANDS, rng=mirror)
            assert gen.bit_generator.state == mirror.bit_generator.state

    def test_scene_sample_batch_matches_scalar(self):
        scene = NoiseScene(
            spl_db=60.0, bands=BANDS, jam_tones_hz=(3000.0,),
            jam_spl_db=52.0,
        )
        gens = [np.random.default_rng(s) for s in (30, 31)]
        batch = scene.sample_batch(3000, gens)
        for i, seed in enumerate((30, 31)):
            mirror = np.random.default_rng(seed)
            assert np.array_equal(batch[i], scene.sample(3000, rng=mirror))
            assert gens[i].bit_generator.state == mirror.bit_generator.state

    def test_record_batch_matches_scalar_and_stream(self):
        mic = MicrophoneModel()
        rng = np.random.default_rng(4)
        signals = 0.1 * rng.standard_normal((3, 4000))
        gens = [np.random.default_rng(s) for s in (40, 41, 42)]
        batch = mic.record_batch(signals, gens)
        for i, seed in enumerate((40, 41, 42)):
            mirror = np.random.default_rng(seed)
            assert np.array_equal(
                batch[i], mic.record(signals[i], rng=mirror)
            )
            assert gens[i].bit_generator.state == mirror.bit_generator.state

    def test_record_batch_draws_only_mode(self):
        mic = MicrophoneModel()
        signals = np.zeros((2, 1000))
        gens = [np.random.default_rng(s) for s in (50, 51)]
        out = mic.record_batch(signals, gens, values=False)
        assert not out.any()
        for seed, gen in zip((50, 51), gens):
            mirror = np.random.default_rng(seed)
            mic.record(np.zeros(1000), rng=mirror)
            assert gen.bit_generator.state == mirror.bit_generator.state

    def test_similarity_batch_matches_scalar(self):
        comparator = AmbientComparator()
        rng = np.random.default_rng(5)
        a = rng.standard_normal((4, 8000))
        b = a + 0.3 * rng.standard_normal((4, 8000))
        batch = comparator.similarity_batch(a, b)
        for i in range(4):
            assert batch[i] == comparator.similarity(a[i], b[i])

    def test_analyze_batch_matches_scalar(self):
        prober = ChannelProber(ModemConfig())
        probe = prober.build_probe()
        rng = np.random.default_rng(6)
        recs = []
        for amp in (0.5, 0.2):
            rec = np.concatenate(
                [np.zeros(400), amp * probe, np.zeros(600)]
            )
            rec += 1e-4 * rng.standard_normal(rec.size)
            recs.append(rec)
        # A probe-free row: the scalar path reports a failed detection.
        recs.append(1e-4 * rng.standard_normal(recs[0].size))
        batch = prober.analyze_batch(np.stack(recs))
        for rec, got in zip(recs, batch):
            try:
                want = prober.analyze(rec)
            except ModemError:
                assert got is None
                continue
            assert got is not None
            assert got.detected == want.detected
            assert got.preamble_score == want.preamble_score
            assert got.tau_rms == want.tau_rms
            assert got.noise_spl == want.noise_spl
            assert got.psnr_db == want.psnr_db
            if want.noise_per_bin is None:
                assert got.noise_per_bin is None
            else:
                assert np.array_equal(got.noise_per_bin, want.noise_per_bin)
            if want.recommended_plan is None:
                assert got.recommended_plan is None
            else:
                assert got.recommended_plan.data == want.recommended_plan.data
        assert batch[0] is not None and batch[0].detected


class TestStagedProbeFleet:
    """Whole-shard identity across staging levels."""

    def test_records_identical_across_staging_levels(self):
        cfg = FleetConfig(n_users=5, hours=24.0, seed=9)
        per_level = {
            level: run_shard(cfg, 0, 5, staging=level)
            for level in STAGING_LEVELS
        }
        assert per_level["none"] == per_level["dtw"] == per_level["probe"]

    def test_faulted_shard_degrades_but_stays_identical(self):
        """Probe staging turns itself off under fault injection; the
        records must still match the all-live run."""
        cfg = FleetConfig(
            n_users=4, hours=24.0, seed=9, faults="msg_drop@otp-tx:p=0.5"
        )
        live = run_shard(cfg, 0, 4, staging="none")
        staged = run_shard(cfg, 0, 4, staging="probe")
        assert live == staged

    def test_scheduler_staging_and_worker_invariance(self):
        cfg = FleetConfig(n_users=6, hours=24.0, seed=4)

        def doc(result):
            import json

            return json.dumps(
                result.aggregate.to_dict(hours=cfg.hours),
                sort_keys=True, indent=2,
            )

        base = doc(FleetScheduler(cfg, workers=1, staging="none").run())
        staged = doc(FleetScheduler(cfg, workers=1, staging="probe").run())
        pooled = doc(
            FleetScheduler(
                cfg, workers=2, shard_users=2, staging="probe"
            ).run()
        )
        assert base == staged == pooled

    def test_invalid_staging_rejected(self):
        cfg = FleetConfig(n_users=2, hours=24.0, seed=1)
        with pytest.raises(ConfigurationError):
            run_shard(cfg, 0, 2, staging="bogus")
        with pytest.raises(ConfigurationError):
            FleetScheduler(cfg, staging="bogus")
