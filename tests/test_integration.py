"""Integration tests: the whole system working together.

These cross-module tests exercise the paper's headline behaviours:
successful unlocking in realistic scenes, the ~1 m security boundary,
attack resistance end-to-end, adaptive modulation in the loop, and the
computation-reduction filters actually saving work.
"""

import numpy as np
import pytest

from repro import WearLock
from repro.channel.link import AcousticLink
from repro.channel.scenarios import get_environment
from repro.config import ModemConfig, SecurityConfig, SystemConfig
from repro.errors import LockedOutError
from repro.modem.bits import bit_error_rate, random_bits
from repro.modem.constellation import QPSK
from repro.modem.receiver import OfdmReceiver
from repro.modem.transmitter import OfdmTransmitter
from repro.protocol.session import AbortReason, SessionConfig, UnlockSession
from repro.security.attacks import ReplayAttacker
from repro.security.otp import OtpManager
from repro.security.timing import TimingGuard, TimingObservation
from repro.sensors.traces import ActivityKind


class TestHeadlineUnlocking:
    """The paper's abstract: low BER, high success, across scenes."""

    def test_unlocks_across_all_field_test_scenes(self):
        """Every scene completes Phase 2; quiet scenes always unlock.

        The loud scenes (cafe, grocery) run with a capped speaker and a
        thin SNR margin — exactly the regime where raw BER sits at the
        repetition code's correction limit — so their success is a coin
        flip per attempt and only the quiet scenes are asserted hard.
        """
        wl = WearLock.pair(secret=b"integration")
        results = {}
        for i, env in enumerate(
            ("office", "classroom", "cafe", "grocery_store")
        ):
            outcome = wl.unlock_attempt(
                environment=env, distance_m=0.3, seed=900 + i
            )
            # Phase 2 ran everywhere: a mode was chosen, BER measured.
            assert outcome.mode is not None, env
            assert outcome.raw_ber is not None, env
            results[env] = outcome.unlocked
            wl.lock()
            if wl.pairing.locked_out:
                wl.pin_unlock()
        assert results["office"] and results["classroom"], results
        assert sum(results.values()) >= 2, results

    def test_average_ber_in_paper_regime(self):
        """Paper: average BER ≈ 0.08 across experiments."""
        wl = WearLock.pair(secret=b"integration")
        bers = []
        for i in range(10):
            o = wl.unlock_attempt(
                environment="office", distance_m=0.4, seed=1000 + i
            )
            if o.raw_ber is not None:
                bers.append(o.raw_ber)
            wl.lock()
        assert len(bers) >= 8
        assert np.mean(bers) < 0.15

    def test_repetition_coding_tolerates_channel_errors(self):
        """Raw BER can be ~0.1 while the token still verifies."""
        wl = WearLock.pair(secret=b"integration")
        successes_with_errors = 0
        for i in range(10):
            o = wl.unlock_attempt(
                environment="classroom", distance_m=0.4, seed=1100 + i
            )
            if o.unlocked and o.raw_ber and o.raw_ber > 0.0:
                successes_with_errors += 1
            wl.lock()
        assert successes_with_errors >= 1


class TestSecurityBoundary:
    """The ~1 m secure range (paper §IV co-located attack)."""

    def test_ber_rises_with_distance(self):
        env = get_environment("office")
        config = ModemConfig()
        tx = OfdmTransmitter(config, QPSK)
        rx = OfdmReceiver(config, QPSK)
        bits = random_bits(240, rng=0)
        wave = tx.modulate(bits).waveform
        bers = {}
        for d in (0.3, 2.5, 5.0):
            total = 0.0
            for trial in range(3):
                link = AcousticLink(
                    room=env.room, noise=env.noise, distance_m=d,
                    seed=trial,
                )
                rec, _ = link.transmit(
                    wave, tx_spl=62.0, rng=np.random.default_rng(trial)
                )
                try:
                    out = rx.receive(rec, expected_bits=240)
                    total += bit_error_rate(bits, out.bits)
                except Exception:
                    total += 1.0
            bers[d] = total / 3
        assert bers[0.3] < 0.05
        assert bers[5.0] > bers[0.3] + 0.1

    def test_concealed_attacker_self_defeats(self):
        """Covering the phone forces NLOS and wrecks the channel."""
        cfg_los = SessionConfig(
            environment="office", distance_m=0.8, los=True, seed=60,
            use_motion_filter=False,
        )
        cfg_concealed = SessionConfig(
            environment="office", distance_m=0.8, los=False,
            nlos_blocking_db=26.0, seed=60, use_motion_filter=False,
        )
        ok_los = sum(
            UnlockSession(cfg_los, otp=OtpManager(b"k")).run(
                rng=np.random.default_rng(3000 + i)
            ).unlocked
            for i in range(5)
        )
        ok_concealed = sum(
            UnlockSession(cfg_concealed, otp=OtpManager(b"k")).run(
                rng=np.random.default_rng(3000 + i)
            ).unlocked
            for i in range(5)
        )
        assert ok_los > ok_concealed


class TestAttacksEndToEnd:
    def test_replayed_recording_fails_otp(self):
        """Record the acoustic token, replay it: OTP freshness wins."""
        system = SystemConfig()
        otp = OtpManager(b"victim")
        from repro.protocol.controllers import PhoneController, WatchController

        phone = PhoneController(system, otp)
        watch = WatchController(system)
        decision = phone.modulator.select(40.0, 0.1)
        tt = phone.prepare_token(decision, None, 75.0)
        cfg_msg = phone.channel_config_message(tt)

        attacker = ReplayAttacker()
        attacker.capture(tt.result.waveform)

        # Legitimate round succeeds and consumes the counter.
        bits = watch.demodulate(tt.result.waveform, cfg_msg)
        ok, _ = phone.verify_token_bits(tt, bits)
        assert ok

        # Replay: same waveform, same demodulation — but the token was
        # consumed, so verification fails and counts a strike.
        replay_bits = watch.demodulate(attacker.replay(), cfg_msg)
        ok2, _ = phone.verify_token_bits(tt, replay_bits)
        assert not ok2
        assert phone.keyguard.failures == 1

    def test_replay_timing_also_fails(self):
        guard = TimingGuard(budget=0.35)
        legit = TimingObservation(
            wireless_rtt=0.09, stack_delay=0.12, acoustic_onset=0.20
        )
        assert guard.is_legitimate(legit)
        attacker = ReplayAttacker(replay_latency=1.2)
        assert not guard.is_legitimate(attacker.timing_observation(legit))

    def test_lockout_after_three_bad_sessions(self):
        """Keyguard demands a PIN after repeated trusted failures."""
        system = SystemConfig(
            security=SecurityConfig(max_failures=3)
        )
        wl = WearLock.pair(secret=b"victim", system=system)
        # Simulate an attacker triggering failures directly.
        for _ in range(3):
            wl.keyguard.trusted_failure()
        assert wl.keyguard.pin_required
        with pytest.raises(LockedOutError):
            wl.keyguard.trusted_unlock()
        wl.pin_unlock()
        assert not wl.keyguard.pin_required


class TestAdaptiveLoop:
    def test_noisier_scene_picks_more_robust_mode(self):
        modes = {}
        for env, seed in (("quiet_room", 70), ("grocery_store", 71)):
            cfg = SessionConfig(
                environment=env, distance_m=0.4, seed=seed,
                use_motion_filter=False, use_noise_filter=False,
            )
            outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run()
            modes[env] = outcome.mode
        order = {"8PSK": 3, "QPSK": 2, "QASK": 1, None: 0}
        assert order[modes["grocery_store"]] <= order[modes["quiet_room"]]

    def test_jammed_subchannels_avoided_in_session(self):
        """The probe's recommended plan drives Phase 2."""
        cfg = SessionConfig(environment="grocery_store", distance_m=0.3,
                            seed=72, use_motion_filter=False)
        outcome = UnlockSession(cfg, otp=OtpManager(b"k")).run()
        # Grocery store has persistent low-frequency compressor tones;
        # the session should still succeed.
        assert outcome.unlocked


class TestComputationReduction:
    def test_motion_abort_skips_acoustic_work(self):
        cfg = SessionConfig(
            environment="office", co_located=False, seed=73
        )
        outcomes = [
            UnlockSession(cfg, otp=OtpManager(b"k")).run(
                rng=np.random.default_rng(4000 + i)
            )
            for i in range(6)
        ]
        aborted = [
            o for o in outcomes
            if o.abort_reason is AbortReason.MOTION_MISMATCH
        ]
        completed = [o for o in outcomes if o.mode is not None]
        assert aborted, "motion filter never fired"
        if completed:
            # Aborted sessions must be cheaper than completed ones.
            assert min(o.total_delay_s for o in aborted) < min(
                o.total_delay_s for o in completed
            )

    def test_aborted_session_charges_less_watch_energy(self):
        cfg_ok = SessionConfig(environment="office", seed=74)
        cfg_abort = SessionConfig(
            environment="office", co_located=False, seed=74
        )
        ok = UnlockSession(cfg_ok, otp=OtpManager(b"k")).run(
            rng=np.random.default_rng(1)
        )
        for i in range(10):
            aborted = UnlockSession(cfg_abort, otp=OtpManager(b"k")).run(
                rng=np.random.default_rng(5000 + i)
            )
            if aborted.abort_reason is AbortReason.MOTION_MISMATCH:
                break
        else:
            pytest.skip("motion filter did not abort in 10 tries")
        assert aborted.watch_energy_j < ok.watch_energy_j
